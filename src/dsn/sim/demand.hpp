// dsn-slint: deterministic — demand streams feed byte-identical replay gates
// in both simulation tiers; every draw comes from a caller-owned seeded Rng.
//
// The pattern→demand layer shared by the flit simulator and the flow tier.
// A TrafficPattern picks destinations; a *demand* is what the application
// layer actually asks the network to carry (src, dst, size). Hoisting the
// demand generation out of the simulators means cross-validation runs
// identical demand streams by construction: the flit sim injects a batch as
// packets (to_injection_trace), the flow tier runs the same batch as flows.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/common/rng.hpp"
#include "dsn/common/types.hpp"
#include "dsn/sim/trace.hpp"
#include "dsn/sim/traffic.hpp"

namespace dsn {

/// One transfer the application layer wants the network to carry.
struct Demand {
  HostId src = 0;
  HostId dst = 0;
  std::uint64_t flits = 0;
};

/// Demand generator interface. Implementations must be stateless apart from
/// the caller-provided RNG (one stream per source host) so replays are exact
/// for any host iteration order.
class TrafficDemand {
 public:
  virtual ~TrafficDemand() = default;
  virtual const char* name() const = 0;
  /// Append the demands host `src` emits at `cycle` to `out`.
  virtual void emit(HostId src, std::uint64_t cycle, Rng& rng,
                    std::vector<Demand>& out) const = 0;
};

/// Open-loop Bernoulli packet generation — the §VII-A load model the flit
/// simulator drives: each cycle each host emits one packet-sized demand with
/// probability `packet_rate`. Draw order (bernoulli, then dest) is the
/// historical NIC order, so trace replays against old seeds stay identical.
class BernoulliDemand final : public TrafficDemand {
 public:
  BernoulliDemand(const TrafficPattern& pattern, double packet_rate,
                  std::uint32_t packet_flits);
  const char* name() const override { return pattern_->name(); }
  void emit(HostId src, std::uint64_t cycle, Rng& rng,
            std::vector<Demand>& out) const override;

 private:
  const TrafficPattern* pattern_;
  double packet_rate_;
  std::uint32_t packet_flits_;
};

/// Deterministic finite batch: every host draws `packets_per_host`
/// destinations from `pattern`, each a demand of `flits_per_packet` flits.
/// Per-host streams are SplitMix64-derived from `seed`, so the batch is a
/// pure function of (pattern, num_hosts, counts, seed) — the cross-validation
/// contract both tiers consume.
std::vector<Demand> pattern_demands(const TrafficPattern& pattern,
                                    std::uint32_t num_hosts,
                                    std::uint32_t packets_per_host,
                                    std::uint32_t flits_per_packet,
                                    std::uint64_t seed);

/// Render a demand batch as a flit-sim injection trace: each demand becomes
/// ceil(flits / packet_flits) packets and each source host injects its
/// packets back-to-back at line rate (one packet start every `packet_flits`
/// cycles), i.e. the NIC never idles while it still has demand. Entries are
/// sorted by cycle as Simulator::set_injection_trace requires.
std::vector<TraceEntry> to_injection_trace(const std::vector<Demand>& demands,
                                           std::uint32_t packet_flits);

/// Sum of demand sizes in flits.
std::uint64_t total_flits(const std::vector<Demand>& demands);

}  // namespace dsn
