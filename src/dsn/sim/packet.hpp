// Packet and flit records for the cycle-accurate simulator. Packets live in a
// recycling pool (slots are reused after ejection) so long saturated runs do
// not grow memory without bound; flits carry their packet's slot index.
#pragma once

#include <cstdint>

#include "dsn/common/types.hpp"

namespace dsn {

using PacketSlot = std::uint32_t;

/// Sentinel slot value (no packet); used by the fault-recovery bookkeeping.
inline constexpr PacketSlot kInvalidPacketSlot = 0xffffffffu;

struct Packet {
  std::uint64_t id = 0;  ///< monotonically increasing, for debugging
  HostId src_host = 0;
  HostId dst_host = 0;
  NodeId src_switch = 0;
  NodeId dst_switch = 0;
  std::uint32_t size_flits = 0;
  std::uint64_t gen_cycle = 0;     ///< creation time (enters the source queue)
  std::uint64_t inject_cycle = 0;  ///< head flit leaves the NIC
  std::uint32_t hops = 0;          ///< switch-to-switch hops taken
  bool measured = false;           ///< generated inside the measurement window
  /// Opaque per-packet routing state threaded through SimRoutingPolicy
  /// (escape down-only bit for adaptive routing, phase for DSN custom).
  std::uint8_t route_state = 0;
  std::uint32_t retries = 0;   ///< fault requeues so far (bounded by max_retries)
  std::uint64_t retry_at = 0;  ///< earliest re-injection cycle while queued for retry
};

struct Flit {
  PacketSlot packet = 0;
  std::uint32_t seq = 0;  ///< 0 = head; size-1 = tail
  bool head = false;
  bool tail = false;
};

/// Immutable record of one delivered packet (optional tracing, see
/// SimConfig::record_packet_traces).
struct PacketTrace {
  std::uint64_t id = 0;
  HostId src_host = 0;
  HostId dst_host = 0;
  std::uint64_t gen_cycle = 0;
  std::uint64_t inject_cycle = 0;
  std::uint64_t eject_cycle = 0;
  std::uint32_t hops = 0;
  std::uint32_t retries = 0;  ///< fault requeues the packet survived

  friend bool operator==(const PacketTrace&, const PacketTrace&) = default;
};

}  // namespace dsn
