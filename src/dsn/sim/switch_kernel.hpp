// dsn-slint: deterministic — this kernel's grant order is replayed by the
// byte-identical equivalence suite; arbitration must depend only on state.
//
// The switch-allocation kernels shared by both simulator cores. One call
// arbitrates one switch for one cycle: round-robin over input VCs per output
// port, at most one flit per input port and per output port, credit-based
// flow control. Every side effect whose destination differs between the
// legacy core (direct global writes) and the active-set core (per-shard
// deltas + cross-shard mailboxes) is routed through the Sink template
// parameter, and the grant body — the flit movement both cores must replay
// identically — exists exactly once (sa_apply_grant).
//
// Two arbitration front-ends feed it:
//   - sa_switch: the legacy full scan, O(ports x total_ivcs) per switch.
//     Every output port scans every input VC from its round-robin pointer.
//   - sa_switch_active: the active-set walk, O(active log active) per
//     switch. It visits only the input VCs the caller lists as active
//     (state kActive with a nonempty buffer) in exactly the cyclic
//     round-robin order the full scan would have encountered them, so the
//     grant decisions AND the credit-stall counter increments are
//     byte-identical: VCs the full scan skips without observable effect
//     (inactive, other output, empty buffer) are precisely the ones missing
//     from the active list.
//
// Sink contract (all calls happen in grant order within the switch):
//   push_wire(down_sw, dport, Arrival)    flit onto a downstream wire
//   push_credit(up_sw, credit_idx, CreditReturn)  credit to an upstream switch
//   add_ejected_flits(n)                  in-measurement-window ejections
//   on_measured_delivery(pkt, eject)      measured-packet stats + traces
//   on_delivery(now, eject)               delivered totals / epoch / reconnect
//   release_packet(slot)                  in-flight decrement + pool free
//   after_grant(u, ivc_idx, went_idle)    active-set bookkeeping (post-update)
//   on_progress(now)                      watchdog progress
#pragma once

#include <algorithm>

#include "dsn/common/error.hpp"
#include "dsn/sim/sim_metrics.hpp"
#include "dsn/sim/simulator.hpp"

namespace dsn {

/// Move the granted flit: advance the round-robin pointer, consume/return
/// credits, forward to the wire or eject at the host, and retire tails.
template <class Sink>
void Simulator::sa_apply_grant(NodeId u, std::uint32_t op, std::uint32_t granted,
                               std::uint64_t now, bool in_window,
                               SaScratch& scratch, Sink& sink) {
  SwitchState& sw = switches_[u];
  const std::uint32_t total_ivcs = sw.num_ports * config_.vcs;
  sw.sa_rr[op] = (granted + 1) % total_ivcs;

  InputVc& ivc = sw.in[granted];
  const std::uint32_t in_port = granted / config_.vcs;
  const std::uint32_t in_vc = granted % config_.vcs;
  scratch.input_used[in_port] = 1;
  scratch.used_inputs.push_back(in_port);

  const Flit flit = ivc.buffer.front();
  ivc.buffer.pop_front();
  OutputVc& o = sw.out[op * config_.vcs + ivc.out_vc];

  if (op < sw.num_net_ports) {
    // Network traversal: consume a credit, put the flit on the wire
    // toward the downstream input port (precomputed in downstream_).
    --o.credits;
    const auto [down_sw, dport] = downstream_[u][op];
    sink.push_wire(down_sw, dport, Arrival{now + link_delay_, flit, ivc.out_vc});
    if (in_window) ++link_flits_[out_link_index_[u][op]];
  } else {
    // Ejection: flit sinks at the host.
    Packet& pkt = packets_[flit.packet];
    if (flit.tail) {
      const std::uint64_t eject = now + link_delay_;
      if (in_window) sink.add_ejected_flits(pkt.size_flits);
      if (pkt.measured) sink.on_measured_delivery(pkt, eject);
      sink.on_delivery(now, eject);
      sink.release_packet(flit.packet);
    }
  }

  // Return a credit for the freed input-buffer slot to the upstream
  // sender (switch output VC or host NIC).
  if (in_port < sw.num_net_ports) {
    const auto [up_sw, up_port] = upstream_[u][in_port];
    sink.push_credit(up_sw, up_port * config_.vcs + in_vc,
                     CreditReturn{now + link_delay_, 1});
  } else {
    const HostId host =
        u * config_.hosts_per_switch + (in_port - sw.num_net_ports);
    // NIC credits return after the link delay as well; modeled by a
    // simple immediate increment shifted via the credit queue of the NIC
    // is unnecessary detail — apply directly (the NIC already waited a
    // full buffer of credits before starting a packet).
    ++nics_[host].credits[in_vc];
  }

  bool went_idle = false;
  if (flit.tail) {
    o.owned = false;
    ivc.state = InputVc::State::kIdle;
    ivc.cur_packet = kInvalidPacketSlot;
    went_idle = true;
  }
  sink.after_grant(u, granted, went_idle);
  sink.on_progress(now);
}

template <class Sink>
void Simulator::sa_switch(NodeId u, std::uint64_t now, bool in_window,
                          SaScratch& scratch, Sink& sink) {
  SwitchState& sw = switches_[u];
  // One flit per input port per cycle; entries are reset via the undo list
  // below, so the preallocated scratch sees no per-cycle container writes.
  std::vector<std::uint8_t>& input_used = scratch.input_used;

  for (std::uint32_t op = 0; op < sw.num_ports; ++op) {
    // Round-robin over input VCs that hold this output.
    const std::uint32_t total_ivcs = sw.num_ports * config_.vcs;
    const std::uint32_t rr = sw.sa_rr[op];
    std::uint32_t granted = total_ivcs;
    for (std::uint32_t k = 0; k < total_ivcs; ++k) {
      const std::uint32_t idx = (rr + k) % total_ivcs;
      const InputVc& ivc = sw.in[idx];
      if (ivc.state != InputVc::State::kActive || ivc.out_port != op) continue;
      const std::uint32_t in_port = idx / config_.vcs;
      if (input_used[in_port]) continue;
      if (ivc.buffer.empty()) continue;
      const OutputVc& o = sw.out[op * config_.vcs + ivc.out_vc];
      if (o.credits == 0) {
        DSN_OBS_ADD(sim_detail::SimMetrics::get().credit_stalls, 1);
        continue;
      }
      granted = idx;
      break;
    }
    if (granted == total_ivcs) continue;
    sa_apply_grant(u, op, granted, now, in_window, scratch, sink);
  }

  for (const std::uint32_t in_port : scratch.used_inputs) input_used[in_port] = 0;
  scratch.used_inputs.clear();
}

template <class Sink>
void Simulator::sa_switch_active(NodeId u, std::uint64_t now, bool in_window,
                                 const std::vector<std::uint32_t>& active,
                                 SaScratch& scratch, Sink& sink) {
  SwitchState& sw = switches_[u];
  std::vector<std::uint8_t>& input_used = scratch.input_used;
  const std::uint32_t total_ivcs = sw.num_ports * config_.vcs;
  DSN_ASSERT(total_ivcs < (1u << 20), "cand encoding holds 20-bit VC indices");

  // Order every active VC by (output port, cyclic distance from that port's
  // round-robin pointer): exactly the sequence in which the full scan would
  // have reached it. Encoded op<<40 | key<<20 | idx so one sort yields both
  // the per-port grouping and the in-port arbitration order. Keys use the
  // pre-grant pointers, which is sound: a grant only moves its own port's
  // pointer, and later candidates of the same port are skipped anyway.
  auto& cands = scratch.rr_candidates;
  cands.clear();
  for (const std::uint32_t idx : active) {
    const std::uint32_t op = sw.in[idx].out_port;
    const std::uint32_t rr = sw.sa_rr[op];
    const std::uint32_t key = idx >= rr ? idx - rr : idx + total_ivcs - rr;
    cands.push_back((std::uint64_t{op} << 40) | (std::uint64_t{key} << 20) | idx);
  }
  std::sort(cands.begin(), cands.end());

  for (std::size_t i = 0; i < cands.size();) {
    const std::uint32_t op = static_cast<std::uint32_t>(cands[i] >> 40);
    std::uint32_t granted = total_ivcs;
    for (; i < cands.size() && static_cast<std::uint32_t>(cands[i] >> 40) == op;
         ++i) {
      if (granted != total_ivcs) continue;  // grant made: drain the group
      const std::uint32_t idx = static_cast<std::uint32_t>(cands[i] & 0xFFFFFu);
      const InputVc& ivc = sw.in[idx];
      // The guards mirror the full scan exactly — a listed VC that fails
      // them is skipped with the same (non-)effects the scan would produce.
      if (ivc.state != InputVc::State::kActive || ivc.out_port != op) continue;
      const std::uint32_t in_port = idx / config_.vcs;
      if (input_used[in_port]) continue;
      if (ivc.buffer.empty()) continue;
      const OutputVc& o = sw.out[op * config_.vcs + ivc.out_vc];
      if (o.credits == 0) {
        DSN_OBS_ADD(sim_detail::SimMetrics::get().credit_stalls, 1);
        continue;
      }
      granted = idx;
    }
    if (granted != total_ivcs) {
      sa_apply_grant(u, op, granted, now, in_window, scratch, sink);
    }
  }

  for (const std::uint32_t in_port : scratch.used_inputs) input_used[in_port] = 0;
  scratch.used_inputs.clear();
}

}  // namespace dsn
