#include "dsn/sim/policy.hpp"

#include "dsn/common/math.hpp"
#include "dsn/routing/dor.hpp"

namespace dsn {

namespace {

/// Shared recovery step of the up*/down*-based policies: rebuild the full
/// SimRouting tables over the alive subgraph, rooted at the lowest alive
/// switch (the pristine root may be halted). Returns nullptr when everything
/// is alive again, which drops the policy back to its pristine tables.
std::unique_ptr<SimRouting> rebuild_degraded_tables(const FaultView& view,
                                                    ThreadPool* pool) {
  if (view.all_alive()) return nullptr;
  NodeId root = kInvalidNode;
  for (NodeId v = 0; v < view.switch_alive.size(); ++v) {
    if (view.switch_alive[v]) {
      root = v;
      break;
    }
  }
  DSN_REQUIRE(root != kInvalidNode, "at least one switch must stay alive");
  return std::make_unique<SimRouting>(*view.topo, view.link_alive, view.switch_alive,
                                      root, pool);
}

}  // namespace

// ---------------------------------------------------------------------------
// AdaptiveUpDownPolicy — state bit 0 holds the escape "down-only" flag.
// ---------------------------------------------------------------------------

AdaptiveUpDownPolicy::AdaptiveUpDownPolicy(const SimRouting& routing, std::uint32_t vcs,
                                           ThreadPool* rebuild_pool)
    : routing_(&routing), vcs_(vcs), rebuild_pool_(rebuild_pool) {
  DSN_REQUIRE(vcs >= 2, "adaptive policy needs >= 2 VCs (escape + adaptive)");
}

void AdaptiveUpDownPolicy::candidates(NodeId u, NodeId t, std::uint8_t state,
                                      std::vector<RouteCandidate>& out) const {
  const SimRouting& tables = table();
  out.clear();
  // Adaptive minimal hops on VCs 1..V-1, preferred over the escape VC.
  for (const NodeId v : tables.minimal_next_hops(u, t)) {
    for (std::uint32_t vc = 1; vc < vcs_; ++vc) {
      out.push_back({v, vc, /*escape=*/false});
    }
  }
  // Escape hop on VC 0 following up*/down*, honoring the down-only state.
  const bool down_only = (state & 1u) != 0;
  const NodeId esc = tables.escape_next_hop(u, t, down_only);
  if (esc != kInvalidNode) {
    out.push_back({esc, 0, /*escape=*/true});
  }
}

std::uint8_t AdaptiveUpDownPolicy::next_state(NodeId u, NodeId v,
                                              const RouteCandidate& chosen,
                                              std::uint8_t /*state*/) const {
  // The down-only restriction applies to *consecutive* escape hops: virtual
  // cut-through absorbs whole packets on adaptive channels, which resets the
  // escape history (Duato's theory for VCT).
  if (!chosen.escape) return 0;
  return table().escape_hop_is_down(u, v) ? 1 : 0;
}

void AdaptiveUpDownPolicy::on_fault_update(const FaultView& view) {
  degraded_ = rebuild_degraded_tables(view, rebuild_pool_);
}

// ---------------------------------------------------------------------------
// UpDownOnlyPolicy — state bit 0 holds the sticky down-only flag.
// ---------------------------------------------------------------------------

UpDownOnlyPolicy::UpDownOnlyPolicy(const SimRouting& routing, std::uint32_t vcs,
                                   ThreadPool* rebuild_pool)
    : routing_(&routing), vcs_(vcs), rebuild_pool_(rebuild_pool) {
  DSN_REQUIRE(vcs >= 1, "need at least one VC");
}

void UpDownOnlyPolicy::candidates(NodeId u, NodeId t, std::uint8_t state,
                                  std::vector<RouteCandidate>& out) const {
  out.clear();
  const bool down_only = (state & 1u) != 0;
  const NodeId v = table().escape_next_hop(u, t, down_only);
  if (v == kInvalidNode) return;
  for (std::uint32_t vc = 0; vc < vcs_; ++vc) {
    out.push_back({v, vc, /*escape=*/true});
  }
}

std::uint8_t UpDownOnlyPolicy::next_state(NodeId u, NodeId v,
                                          const RouteCandidate& /*chosen*/,
                                          std::uint8_t state) const {
  // Plain up*/down*: once the path turns downward it stays downward.
  return (state & 1u) != 0 || table().escape_hop_is_down(u, v) ? 1 : 0;
}

void UpDownOnlyPolicy::on_fault_update(const FaultView& view) {
  degraded_ = rebuild_degraded_tables(view, rebuild_pool_);
}

// ---------------------------------------------------------------------------
// DsnCustomPolicy — state holds the routing phase.
// ---------------------------------------------------------------------------

DsnCustomPolicy::DsnCustomPolicy(const Dsn& dsn, std::uint32_t vcs)
    : dsn_(&dsn), vcs_per_class_(vcs / 4) {
  DSN_REQUIRE(vcs >= 4 && vcs % 4 == 0, "dsn-custom needs a multiple of 4 VCs");
}

std::uint32_t DsnCustomPolicy::level_for_distance(std::uint64_t d) const {
  // Real-arithmetic l = floor(log(n/d)) + 1: smallest l with n <= d * 2^l.
  const std::uint32_t n = dsn_->n();
  const std::uint32_t p = dsn_->p();
  for (std::uint32_t l = 1; l < p; ++l) {
    if (n <= (d << l)) return l;
  }
  return p;
}

RouteCandidate DsnCustomPolicy::finish_hop(NodeId u, NodeId t) const {
  const Dsn& d = *dsn_;
  const std::uint32_t n = d.n();
  const std::uint32_t p = d.p();
  const std::uint64_t cw = ring_cw_distance(u, t, n);
  const std::uint64_t ccw = n - cw;
  const bool forward = cw <= ccw;
  const NodeId v = forward ? d.succ(u) : d.pred(u);
  // Hops fully inside the Extra region [0, 2p] with the destination inside it
  // ride the Extra channels, which breaks the FINISH ring cycle (§V-A).
  const bool region = t < 2 * p && u <= 2 * p && v <= 2 * p;
  return {v, region ? kVcExtra : kVcFinish, /*escape=*/false};
}

DsnCustomPolicy::Decision DsnCustomPolicy::decide(NodeId u, NodeId t,
                                                  std::uint8_t phase) const {
  const Dsn& d = *dsn_;
  const std::uint32_t n = d.n();
  const std::uint32_t p = d.p();
  const std::uint32_t x = d.x();
  DSN_REQUIRE(u != t, "no hop needed when already at destination");

  const std::uint64_t cw = ring_cw_distance(u, t, n);

  if (phase == kPhasePreWork) {
    const std::uint32_t l = level_for_distance(cw);
    if (d.level(u) > l) {
      return {{d.pred(u), kVcUp, false}, kPhasePreWork};
    }
    phase = kPhaseMain;  // fall through
  }

  if (phase == kPhaseMain) {
    if (cw > p) {
      const std::uint32_t lu = d.level(u);
      if (lu == x + 1) {
        // No shortcut at this level: the LOOP-STOP condition fires and the
        // remaining (bounded) distance is covered by FINISH.
        return {finish_hop(u, t), kPhaseFinish};
      }
      if (lu <= x) {
        // Greedy take rule: use the node's own shortcut whenever it does not
        // overshoot (robust to the integer-span level off-by-one); overshoot
        // at any level is dodged by stepping forward (§V-D) — MAIN never
        // steps backward, so no oscillation is possible.
        const NodeId v = d.shortcut_target(u);
        const std::uint64_t span = ring_cw_distance(u, v, n);
        if (span <= cw) {
          return {{v, kVcMain, false}, kPhaseMain};
        }
      }
      return {{d.succ(u), kVcMain, false}, kPhaseMain};
    }
    phase = kPhaseFinish;  // close enough — fall through
  }

  return {finish_hop(u, t), kPhaseFinish};
}

bool DsnCustomPolicy::hop_alive(NodeId u, NodeId v) const {
  if (!switch_alive_[v]) return false;
  for (const AdjHalf& h : fault_topo_->graph.neighbors(u)) {
    if (h.to == v && link_alive_[h.link]) return true;
  }
  return false;
}

void DsnCustomPolicy::on_fault_update(const FaultView& view) {
  fault_topo_ = view.topo;
  link_alive_.assign(view.link_alive.begin(), view.link_alive.end());
  switch_alive_.assign(view.switch_alive.begin(), view.switch_alive.end());
  degraded_ = !view.all_alive();
}

void DsnCustomPolicy::candidates(NodeId u, NodeId t, std::uint8_t state,
                                 std::vector<RouteCandidate>& out) const {
  out.clear();
  RouteCandidate base = decide(u, t, state).candidate;
  if (degraded_ && !hop_alive(u, base.next)) {
    const Dsn& d = *dsn_;
    if (base.vc == kVcUp) {
      // PRE-WORK blocked by a dead descent link: skip ahead to MAIN from the
      // current level (phases only advance, so the class ordering holds).
      base = decide(u, t, kPhaseMain).candidate;
    }
    if (!hop_alive(u, base.next)) {
      const NodeId fwd = d.succ(u);
      const NodeId bwd = d.pred(u);
      if (base.next != fwd && base.next != bwd) {
        // Dead shortcut: walk around it on ring hops, staying in MAIN.
        base = {fwd, kVcMain, /*escape=*/false};
      } else {
        // Dead ring hop: flip the walk direction; the detour rides the
        // FINISH class (or Extra inside the region) since MAIN's forward
        // premise is gone either way.
        const NodeId other = base.next == fwd ? bwd : fwd;
        const std::uint32_t p = d.p();
        const bool region = t < 2 * p && u <= 2 * p && other <= 2 * p;
        base = {other, region ? kVcExtra : kVcFinish, /*escape=*/false};
      }
      if (!hop_alive(u, base.next)) return;  // stranded: TTL accounts the packet
    }
  }
  // Expand the channel class into its vcs_per_class physical VCs.
  for (std::uint32_t k = 0; k < vcs_per_class_; ++k) {
    out.push_back({base.next, base.vc * vcs_per_class_ + k, base.escape});
  }
}

std::uint8_t DsnCustomPolicy::next_state(NodeId /*u*/, NodeId /*v*/,
                                         const RouteCandidate& chosen,
                                         std::uint8_t /*state*/) const {
  // The phase transition is recomputed by decide() at the next switch; we
  // only need to persist the monotone phase. Derive it from the VC class of
  // the chosen candidate, which encodes the phase unambiguously.
  switch (chosen.vc / vcs_per_class_) {
    case kVcUp:
      return kPhasePreWork;
    case kVcMain:
      return kPhaseMain;
    default:
      return kPhaseFinish;
  }
}

// ---------------------------------------------------------------------------
// RingClockwisePolicy — intentionally unsafe negative control.
// ---------------------------------------------------------------------------

RingClockwisePolicy::RingClockwisePolicy(const Topology& ring) : topo_(&ring) {
  DSN_REQUIRE(ring.kind == TopologyKind::kRing, "needs a plain ring topology");
}

void RingClockwisePolicy::candidates(NodeId u, NodeId t, std::uint8_t /*state*/,
                                     std::vector<RouteCandidate>& out) const {
  out.clear();
  if (u == t) return;
  const NodeId succ = (u + 1) % topo_->num_nodes();
  // Single VC, single direction: the textbook deadlocked ring.
  out.push_back({succ, 0, /*escape=*/false});
}

std::uint8_t RingClockwisePolicy::next_state(NodeId, NodeId, const RouteCandidate&,
                                             std::uint8_t) const {
  return 0;
}

// ---------------------------------------------------------------------------
// TorusDorPolicy — state encodes (active dimension + 1) << 1 | crossed, so
// the dateline bit resets whenever the packet turns into a new dimension.
// ---------------------------------------------------------------------------

TorusDorPolicy::TorusDorPolicy(const Topology& torus, std::uint32_t vcs)
    : topo_(&torus) {
  DSN_REQUIRE(torus.kind == TopologyKind::kTorus2D ||
                  torus.kind == TopologyKind::kTorus3D,
              "TorusDorPolicy needs a torus topology");
  DSN_REQUIRE(vcs >= 2 * torus.dims.size(),
              "dateline DOR needs 2 VCs per torus dimension");
}

std::uint32_t TorusDorPolicy::coord(NodeId v, std::size_t d) const {
  NodeId rest = v;
  for (std::size_t k = 0; k < d; ++k) rest /= topo_->dims[k];
  return rest % topo_->dims[d];
}

std::size_t TorusDorPolicy::active_dimension(NodeId u, NodeId t) const {
  for (std::size_t d = 0; d < topo_->dims.size(); ++d) {
    if (coord(u, d) != coord(t, d)) return d;
  }
  return topo_->dims.size();
}

void TorusDorPolicy::candidates(NodeId u, NodeId t, std::uint8_t state,
                                std::vector<RouteCandidate>& out) const {
  out.clear();
  const NodeId next = torus_dor_next_hop(*topo_, u, t);
  if (next == kInvalidNode) return;
  const std::size_t dim = active_dimension(u, t);
  const bool crossed =
      static_cast<std::size_t>(state >> 1) == dim + 1 && (state & 1u) != 0;
  out.push_back({next, static_cast<std::uint32_t>(2 * dim + (crossed ? 1 : 0)),
                 /*escape=*/false});
}

std::uint8_t TorusDorPolicy::next_state(NodeId u, NodeId v,
                                        const RouteCandidate& /*chosen*/,
                                        std::uint8_t state) const {
  const std::size_t rank = topo_->dims.size();
  // Which dimension did the hop move in?
  std::size_t dim = rank;
  for (std::size_t d = 0; d < rank; ++d) {
    if (coord(u, d) != coord(v, d)) {
      dim = d;
      break;
    }
  }
  if (dim == rank) return 0;
  const bool same_dim = static_cast<std::size_t>(state >> 1) == dim + 1;
  const bool prev_crossed = same_dim && (state & 1u) != 0;
  const std::uint32_t cu = coord(u, dim);
  const std::uint32_t cv = coord(v, dim);
  const std::uint32_t size = topo_->dims[dim];
  // Wrap hops (size-1 <-> 0) cross the dateline of the dimension.
  const bool wrap = (cu == size - 1 && cv == 0) || (cu == 0 && cv == size - 1);
  return static_cast<std::uint8_t>(((dim + 1) << 1) |
                                   ((prev_crossed || wrap) ? 1u : 0u));
}

}  // namespace dsn
