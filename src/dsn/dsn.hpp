// Umbrella header: include everything in the dsn library.
//
// For faster builds include the specific module headers instead; this header
// exists for quick experiments and the examples.
#pragma once

#include "dsn/common/cli.hpp"
#include "dsn/common/error.hpp"
#include "dsn/common/math.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/common/table.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/common/types.hpp"

#include "dsn/graph/bisection.hpp"
#include "dsn/graph/graph.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/graph/paths.hpp"

#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/generators.hpp"
#include "dsn/topology/hooks.hpp"
#include "dsn/topology/io.hpp"
#include "dsn/topology/related.hpp"
#include "dsn/topology/topology.hpp"

#include "dsn/routing/cdg.hpp"
#include "dsn/routing/dor.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/greedy.hpp"
#include "dsn/routing/route.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/routing/updown.hpp"

#include "dsn/layout/layout.hpp"

#include "dsn/sim/config.hpp"
#include "dsn/sim/demand.hpp"
#include "dsn/sim/fault.hpp"
#include "dsn/sim/packet.hpp"
#include "dsn/sim/policy.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/sim/traffic.hpp"

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/faults.hpp"

#include "dsn/flow/fair_share.hpp"
#include "dsn/flow/flow_sim.hpp"
#include "dsn/flow/routes.hpp"
#include "dsn/flow/workload.hpp"

#include "dsn/check/validator.hpp"
#include "dsn/check/violation.hpp"
