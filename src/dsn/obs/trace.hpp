// Chrome-trace-format event capture. A TraceWriter buffers duration (B/E),
// complete (X) and counter (C) events and serialises them as the JSON object
// format Perfetto / chrome://tracing load directly:
//
//   {"traceEvents":[{"name":"sim.run","ph":"B","pid":1,"tid":0,"ts":12.5},...],
//    "displayTimeUnit":"ms"}
//
// Timestamps are microseconds (double) from the writer's start. Thread ids
// are the dense dsn::obs::thread_index() values, with thread_name metadata
// (M events) attached by set_current_thread_name so ThreadPool workers show
// up as "pool-worker-N" tracks.
//
// One process-wide writer is active at a time (start_trace/stop_trace); the
// TracedSpan RAII type captures the active writer at construction so a span
// that outlives stop_trace stays balanced within the writer it started in.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dsn/common/mutex.hpp"
#include "dsn/common/thread_annotations.hpp"

namespace dsn::obs {

class TraceWriter {
 public:
  TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Duration events; ts defaults to "now" relative to writer start.
  void begin(const std::string& name);
  void end(const std::string& name);
  /// Complete event covering [start_us, start_us + dur_us).
  void complete(const std::string& name, double start_us, double dur_us);
  /// Counter track sample (renders as a stacked area chart).
  void counter(const std::string& name, double value);
  /// Thread-name metadata for the calling thread's track.
  void name_current_thread(const std::string& name);
  /// Thread-name metadata for an explicit tid (used to replay names recorded
  /// before this writer existed).
  void name_thread(std::uint32_t tid, const std::string& name);

  /// Microseconds since this writer was constructed.
  double now_us() const;

  std::size_t num_events() const;

  /// Serialise all buffered events as Chrome-trace JSON.
  std::string to_json() const;
  /// to_json() to a file; throws dsn::PreconditionError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    char ph;                 ///< 'B', 'E', 'X', 'C', 'M'
    std::uint32_t tid;
    double ts;
    double dur;              ///< X only
    double value;            ///< C only
    std::string meta_value;  ///< M only (thread_name arg)
  };

  void push(Event event);

  mutable Mutex mutex_;
  std::vector<Event> events_ DSN_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point start_;
};

/// The process-wide active writer, or nullptr when tracing is off.
TraceWriter* active_trace();

/// Install a fresh process-wide writer. Returns it (also reachable via
/// active_trace()). A previously active writer is retired but kept alive so
/// spans that captured it stay valid.
TraceWriter& start_trace();

/// Detach the active writer and write it to `path`. No-op (returns false)
/// when tracing was never started.
bool stop_trace(const std::string& path);

/// Convenience: name the calling thread's track on the active writer (no-op
/// when tracing is off) and remember the name for writers started later.
void set_current_thread_name(const std::string& name);

/// RAII B/E span on the writer active at construction time. Null writer
/// (tracing off) makes both ends no-ops.
class TracedSpan {
 public:
  explicit TracedSpan(const char* name) : name_(name), writer_(active_trace()) {
    if (writer_ != nullptr) writer_->begin(name_);
  }
  ~TracedSpan() {
    if (writer_ != nullptr) writer_->end(name_);
  }
  TracedSpan(const TracedSpan&) = delete;
  TracedSpan& operator=(const TracedSpan&) = delete;

 private:
  std::string name_;
  TraceWriter* writer_;
};

}  // namespace dsn::obs
