// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "dsn/common/error.hpp"

namespace dsn::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

const MetricSnapshot* Snapshot::find(const std::string& name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

namespace {

bool env_enables_obs() {
  const char* v = std::getenv("DSN_OBS");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enables_obs()};
  return flag;
}

}  // namespace

bool metrics_on() { return enabled_flag().load(std::memory_order_relaxed); }

void set_metrics_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

MetricsRegistry::MetricsRegistry()
    : overflow_shard_(kMaxSlots),
      gauges_(std::make_unique<GaugeCell[]>(kMaxMetrics)) {
  descriptors_.reserve(kMaxMetrics);
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    overflow_shard_.slots[i].store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricId MetricsRegistry::counter(const std::string& name) {
  return register_metric(name, MetricKind::kCounter, {});
}

MetricId MetricsRegistry::gauge(const std::string& name) {
  return register_metric(name, MetricKind::kGauge, {});
}

MetricId MetricsRegistry::histogram(const std::string& name,
                                    std::vector<std::uint64_t> bounds) {
  DSN_REQUIRE(!bounds.empty(), "histogram needs at least one bucket bound");
  DSN_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()) &&
                  std::adjacent_find(bounds.begin(), bounds.end()) == bounds.end(),
              "histogram bounds must be strictly ascending");
  return register_metric(name, MetricKind::kHistogram, std::move(bounds));
}

MetricId MetricsRegistry::register_metric(const std::string& name, MetricKind kind,
                                          std::vector<std::uint64_t> bounds) {
  LockGuard lock(mutex_);
  for (std::uint32_t i = 0; i < descriptors_.size(); ++i) {
    if (descriptors_[i].name != name) continue;
    DSN_REQUIRE(descriptors_[i].kind == kind,
                "metric '" + name + "' already registered with a different kind");
    DSN_REQUIRE(kind != MetricKind::kHistogram || descriptors_[i].bounds == bounds,
                "histogram '" + name + "' already registered with different bounds");
    return MetricId{i};
  }
  DSN_REQUIRE(descriptors_.size() < kMaxMetrics, "metric registry is full");

  Descriptor desc;
  desc.name = name;
  desc.kind = kind;
  desc.bounds = std::move(bounds);
  switch (kind) {
    case MetricKind::kCounter:
      desc.slot_base = next_slot_;
      desc.slot_count = 1;
      break;
    case MetricKind::kGauge:
      DSN_REQUIRE(next_gauge_ < kMaxMetrics, "gauge registry is full");
      desc.slot_base = next_gauge_++;
      desc.slot_count = 0;
      break;
    case MetricKind::kHistogram:
      // bucket counts (bounds + overflow) followed by one sum slot.
      desc.slot_base = next_slot_;
      desc.slot_count = static_cast<std::uint32_t>(desc.bounds.size()) + 2;
      break;
  }
  DSN_REQUIRE(next_slot_ + desc.slot_count <= kMaxSlots,
              "metric slot capacity exhausted");
  next_slot_ += desc.slot_count;

  descriptors_.push_back(std::move(desc));
  const auto index = static_cast<std::uint32_t>(descriptors_.size() - 1);
  num_descriptors_.store(index + 1, std::memory_order_release);
  return MetricId{index};
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_current_thread() {
  const std::uint32_t idx = thread_index();
  if (idx >= kMaxThreadShards) return overflow_shard_;
  Shard* s = shards_[idx].load(std::memory_order_acquire);
  if (s != nullptr) return *s;
  LockGuard lock(mutex_);
  s = shards_[idx].load(std::memory_order_relaxed);
  if (s == nullptr) {
    auto fresh = std::make_unique<Shard>(kMaxSlots);
    for (std::size_t i = 0; i < kMaxSlots; ++i) {
      fresh->slots[i].store(0, std::memory_order_relaxed);
    }
    s = fresh.get();
    owned_shards_.push_back(std::move(fresh));
    shards_[idx].store(s, std::memory_order_release);
  }
  return *s;
}

namespace {

/// Owner-thread slot update: a plain load/add/store on a relaxed atomic. Only
/// the overflow shard (shared between threads) needs a real RMW.
inline void slot_add(std::atomic<std::uint64_t>& slot, std::uint64_t delta,
                     bool shared) {
  if (shared) {
    slot.fetch_add(delta, std::memory_order_relaxed);
  } else {
    slot.store(slot.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }
}

}  // namespace

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  if (!id.valid()) return;
  DSN_ASSERT(id.index < num_descriptors_.load(std::memory_order_acquire),
             "metric id out of range");
  const Descriptor& desc = descriptors_[id.index];
  DSN_REQUIRE(desc.kind == MetricKind::kCounter,
              "add() needs a counter: " + desc.name);
  Shard& shard = shard_for_current_thread();
  slot_add(shard.slots[desc.slot_base], delta, &shard == &overflow_shard_);
}

void MetricsRegistry::gauge_set(MetricId id, std::int64_t value) {
  if (!id.valid()) return;
  DSN_ASSERT(id.index < num_descriptors_.load(std::memory_order_acquire),
             "metric id out of range");
  const Descriptor& desc = descriptors_[id.index];
  DSN_REQUIRE(desc.kind == MetricKind::kGauge,
              "gauge_set() needs a gauge: " + desc.name);
  GaugeCell& cell = gauges_[desc.slot_base];
  cell.value.store(value, std::memory_order_relaxed);
  cell.ever_set.store(1, std::memory_order_relaxed);
  std::int64_t prev = cell.max.load(std::memory_order_relaxed);
  while (value > prev &&
         !cell.max.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::observe(MetricId id, std::uint64_t value) {
  if (!id.valid()) return;
  DSN_ASSERT(id.index < num_descriptors_.load(std::memory_order_acquire),
             "metric id out of range");
  const Descriptor& desc = descriptors_[id.index];
  DSN_REQUIRE(desc.kind == MetricKind::kHistogram,
              "observe() needs a histogram: " + desc.name);
  // Bucket i counts values <= bounds[i]; the final bucket is the overflow.
  std::uint32_t bucket = 0;
  while (bucket < desc.bounds.size() && value > desc.bounds[bucket]) ++bucket;
  Shard& shard = shard_for_current_thread();
  const bool shared = &shard == &overflow_shard_;
  slot_add(shard.slots[desc.slot_base + bucket], 1, shared);
  const std::uint32_t sum_slot = desc.slot_base + desc.slot_count - 1;
  slot_add(shard.slots[sum_slot], value, shared);
}

std::uint64_t MetricsRegistry::shard_sum(std::uint32_t slot) const {
  std::uint64_t total = 0;
  for (const auto& holder : shards_) {
    const Shard* s = holder.load(std::memory_order_acquire);
    if (s != nullptr) total += s->slots[slot].load(std::memory_order_relaxed);
  }
  total += overflow_shard_.slots[slot].load(std::memory_order_relaxed);
  return total;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  const std::uint32_t count = num_descriptors_.load(std::memory_order_acquire);
  snap.metrics.reserve(count);
  LockGuard lock(mutex_);  // freeze registration + shard creation order
  for (std::uint32_t i = 0; i < count; ++i) {
    const Descriptor& desc = descriptors_[i];
    MetricSnapshot m;
    m.name = desc.name;
    m.kind = desc.kind;
    switch (desc.kind) {
      case MetricKind::kCounter:
        m.value = shard_sum(desc.slot_base);
        break;
      case MetricKind::kGauge: {
        const GaugeCell& cell = gauges_[desc.slot_base];
        m.gauge_value = cell.value.load(std::memory_order_relaxed);
        m.gauge_max = cell.max.load(std::memory_order_relaxed);
        break;
      }
      case MetricKind::kHistogram: {
        m.bounds = desc.bounds;
        const std::uint32_t buckets = desc.slot_count - 1;
        m.bucket_counts.resize(buckets);
        for (std::uint32_t b = 0; b < buckets; ++b) {
          m.bucket_counts[b] = shard_sum(desc.slot_base + b);
          m.hist_count += m.bucket_counts[b];
        }
        m.hist_sum = shard_sum(desc.slot_base + desc.slot_count - 1);
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void MetricsRegistry::reset() {
  LockGuard lock(mutex_);
  for (const auto& holder : shards_) {
    Shard* s = holder.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (std::size_t i = 0; i < kMaxSlots; ++i) {
      s->slots[i].store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    overflow_shard_.slots[i].store(0, std::memory_order_relaxed);
  }
  for (std::uint32_t g = 0; g < next_gauge_; ++g) {
    gauges_[g].value.store(0, std::memory_order_relaxed);
    gauges_[g].max.store(0, std::memory_order_relaxed);
    gauges_[g].ever_set.store(0, std::memory_order_relaxed);
  }
}

std::size_t MetricsRegistry::num_metrics() const {
  return num_descriptors_.load(std::memory_order_acquire);
}

}  // namespace dsn::obs
