// Observability metrics: a registry of named counters, gauges and
// fixed-bucket histograms with lock-free per-thread shards.
//
// Write discipline mirrors the MS-BFS accumulators: every thread owns a shard
// (an array of relaxed atomics only that thread writes), so the hot path is a
// plain load/add/store with no contention, and snapshot() merges the shards
// serially in shard-index order — deterministic for any thread count.
// Registration (name -> id) is the only mutex-guarded path and is idempotent,
// so call sites can re-register by name without bookkeeping.
//
// Collection is gated by a process-wide runtime switch (metrics_on), seeded
// from the DSN_OBS environment variable and flippable by tools; the DSN_OBS=0
// *compile-time* switch in obs.hpp removes instrumentation call sites
// entirely. The classes here are compiled unconditionally so that mixed
// builds stay ODR-clean.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsn/common/mutex.hpp"
#include "dsn/common/thread_annotations.hpp"

namespace dsn::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// Handle to a registered metric. Default-constructed ids are invalid and
/// every registry operation on them is a no-op, so uninstrumented paths can
/// carry ids without caring whether registration ever happened.
struct MetricId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t index = kInvalid;

  constexpr bool valid() const { return index != kInvalid; }
};

/// Point-in-time merged view of one metric.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;       ///< counter total
  std::int64_t gauge_value = 0;  ///< gauge: last set value
  std::int64_t gauge_max = 0;    ///< gauge: max value ever set
  std::uint64_t hist_count = 0;  ///< histogram: total observations
  std::uint64_t hist_sum = 0;    ///< histogram: sum of observed values
  std::vector<std::uint64_t> bounds;         ///< histogram bucket upper bounds
  std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 (overflow last)
};

/// All metrics in registration order (stable across runs for a fixed
/// instrumentation set, so reports diff cleanly).
struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  /// Entry by name, or nullptr.
  const MetricSnapshot* find(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Hard capacities: descriptors and per-shard slots are preallocated so the
  /// hot path never observes a reallocation. Exceeding them throws
  /// dsn::PreconditionError at registration time.
  static constexpr std::size_t kMaxMetrics = 512;
  static constexpr std::size_t kMaxSlots = 4096;
  /// Threads beyond this many distinct shards share one overflow shard
  /// (fetch_add instead of owner-only stores; still race-free).
  static constexpr std::size_t kMaxThreadShards = 256;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by the DSN_OBS_* instrumentation macros.
  static MetricsRegistry& global();

  /// Register (or look up) a metric. Idempotent by name; re-registering with
  /// a different kind (or different histogram bounds) throws.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  /// `bounds` are ascending inclusive upper bounds; values above the last
  /// bound land in a final overflow bucket.
  MetricId histogram(const std::string& name, std::vector<std::uint64_t> bounds);

  /// Hot-path updates. Invalid ids are ignored; kind mismatches throw.
  void add(MetricId id, std::uint64_t delta = 1);
  void gauge_set(MetricId id, std::int64_t value);
  void observe(MetricId id, std::uint64_t value);

  /// Merge all shards (shard-index order, then the overflow shard) into a
  /// deterministic snapshot. Safe to call concurrently with writers: slots
  /// are relaxed atomics, so a snapshot taken mid-update is merely slightly
  /// stale, never torn.
  Snapshot snapshot() const;

  /// Zero every slot and gauge (descriptors and names are kept).
  void reset();

  std::size_t num_metrics() const;

 private:
  struct Descriptor {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot_base = 0;   ///< shard slot (counter/histogram) or gauge index
    std::uint32_t slot_count = 0;  ///< histogram: bucket counts + trailing sum slot
    std::vector<std::uint64_t> bounds;
  };

  /// Shard slots are written only by the owning thread (overflow shard
  /// excepted), read by snapshot(); relaxed atomics keep that race-free.
  struct Shard {
    explicit Shard(std::size_t num_slots)
        : slots(std::make_unique<std::atomic<std::uint64_t>[]>(num_slots)) {}
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  struct GaugeCell {
    std::atomic<std::int64_t> value{0};
    std::atomic<std::int64_t> max{0};
    std::atomic<std::uint64_t> ever_set{0};
  };

  MetricId register_metric(const std::string& name, MetricKind kind,
                           std::vector<std::uint64_t> bounds);
  Shard& shard_for_current_thread();
  std::uint64_t shard_sum(std::uint32_t slot) const;

  mutable Mutex mutex_;
  /// Append-only, reserved to kMaxMetrics (never reallocates). Mutated only
  /// under mutex_, but deliberately NOT annotated DSN_GUARDED_BY: the hot
  /// update path reads the prefix published through the num_descriptors_
  /// acquire/release pair without taking the lock. This is the lock-free
  /// publication pattern DESIGN.md §8 describes; the capability model cannot
  /// express "writers locked, readers publication-ordered".
  std::vector<Descriptor> descriptors_;
  std::atomic<std::uint32_t> num_descriptors_{0};  ///< published count for lock-free reads
  std::uint32_t next_slot_ DSN_GUARDED_BY(mutex_) = 0;

  std::array<std::atomic<Shard*>, kMaxThreadShards> shards_{};
  std::vector<std::unique_ptr<Shard>> owned_shards_ DSN_GUARDED_BY(mutex_);
  Shard overflow_shard_;

  std::unique_ptr<GaugeCell[]> gauges_;  ///< kMaxMetrics cells
  std::uint32_t next_gauge_ DSN_GUARDED_BY(mutex_) = 0;
};

/// Runtime collection switch. Seeded from the DSN_OBS environment variable
/// ("1"/"true"/"on" enables; anything else, or unset, disables) so sanitizer
/// CI legs can exercise instrumented paths without recompiling; tools that
/// report metrics (dsn-lint stats, --trace flags) enable it explicitly.
bool metrics_on();
void set_metrics_enabled(bool enabled);

/// Dense process-wide index of the calling thread (assigned on first use;
/// never reused). Shard selection and trace tids both key off it.
std::uint32_t thread_index();

}  // namespace dsn::obs
