// Umbrella header + instrumentation macro family for dsn::obs.
//
// Call sites use the DSN_OBS_* macros, never the registry directly, so one
// compile-time switch strips every instrumentation site from hot code:
//
//   static const auto kHops = DSN_OBS_COUNTER("dsn.sim.hops");
//   DSN_OBS_ADD(kHops, 1);
//   DSN_OBS_SPAN("sim.run");
//
// Builds default to DSN_OBS=1 (compiled in, runtime-gated by metrics_on()
// which defaults OFF), while -DDSN_OBS=0 (the CMake DSN_OBS option) expands
// every macro to nothing — registration macros yield a constexpr invalid
// MetricId, update macros discard their arguments unevaluated — so disabled
// builds carry zero instrumentation cost, bit-for-bit. The library types
// themselves are always compiled; only call sites vary, which keeps mixed
// DSN_OBS=0/1 link lines ODR-clean.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "dsn/obs/metrics.hpp"
#include "dsn/obs/trace.hpp"

#ifndef DSN_OBS
#define DSN_OBS 1
#endif

namespace dsn::obs {

/// RAII wall-clock timer that adds elapsed nanoseconds to a counter on
/// destruction (and optionally counts invocations on a second counter).
/// Cheap enough for per-shard scopes: two steady_clock reads per scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId elapsed_ns_counter,
                       MetricId calls_counter = MetricId{})
      : elapsed_(elapsed_ns_counter),
        calls_(calls_counter),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    auto& registry = MetricsRegistry::global();
    registry.add(elapsed_, static_cast<std::uint64_t>(ns));
    if (calls_.valid()) registry.add(calls_, 1);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricId elapsed_;
  MetricId calls_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dsn::obs

#define DSN_OBS_CONCAT_INNER(a, b) a##b
#define DSN_OBS_CONCAT(a, b) DSN_OBS_CONCAT_INNER(a, b)

#if DSN_OBS

// Registration: cache the id in a function-local/namespace-scope static at
// the call site — registration is idempotent, so re-running the initialiser
// in another TU returns the same id.
#define DSN_OBS_COUNTER(name) ::dsn::obs::MetricsRegistry::global().counter(name)
#define DSN_OBS_GAUGE(name) ::dsn::obs::MetricsRegistry::global().gauge(name)
#define DSN_OBS_HISTOGRAM(name, ...) \
  ::dsn::obs::MetricsRegistry::global().histogram(name, __VA_ARGS__)

// Updates: the metrics_on() check is the entire disabled-at-runtime cost
// (one relaxed atomic load).
#define DSN_OBS_ADD(id, ...)                                    \
  do {                                                          \
    if (::dsn::obs::metrics_on())                               \
      ::dsn::obs::MetricsRegistry::global().add(id, __VA_ARGS__); \
  } while (0)
#define DSN_OBS_GAUGE_SET(id, value)                                   \
  do {                                                                 \
    if (::dsn::obs::metrics_on())                                      \
      ::dsn::obs::MetricsRegistry::global().gauge_set(id, value);      \
  } while (0)
#define DSN_OBS_OBSERVE(id, value)                                   \
  do {                                                               \
    if (::dsn::obs::metrics_on())                                    \
      ::dsn::obs::MetricsRegistry::global().observe(id, value);      \
  } while (0)

// RAII scopes. DSN_OBS_SPAN emits a B/E pair on the active trace writer (and
// is a no-op when tracing is off); DSN_OBS_TIMER accumulates elapsed ns into
// a counter when metrics are on.
#define DSN_OBS_SPAN(name) \
  ::dsn::obs::TracedSpan DSN_OBS_CONCAT(dsn_obs_span_, __LINE__)(name)
#define DSN_OBS_TIMER(...)                                              \
  std::optional<::dsn::obs::ScopedTimer> DSN_OBS_CONCAT(dsn_obs_timer_, \
                                                        __LINE__);      \
  if (::dsn::obs::metrics_on())                                         \
  DSN_OBS_CONCAT(dsn_obs_timer_, __LINE__).emplace(__VA_ARGS__)

// Arbitrary statement compiled only in instrumented builds.
#define DSN_OBS_ONLY(...) __VA_ARGS__

#else  // DSN_OBS == 0

#define DSN_OBS_COUNTER(name) (::dsn::obs::MetricId{})
#define DSN_OBS_GAUGE(name) (::dsn::obs::MetricId{})
#define DSN_OBS_HISTOGRAM(name, ...) (::dsn::obs::MetricId{})
#define DSN_OBS_ADD(id, ...) ((void)0)
#define DSN_OBS_GAUGE_SET(id, value) ((void)0)
#define DSN_OBS_OBSERVE(id, value) ((void)0)
#define DSN_OBS_SPAN(name) ((void)0)
#define DSN_OBS_TIMER(...) ((void)0)
#define DSN_OBS_ONLY(...)

#endif  // DSN_OBS
