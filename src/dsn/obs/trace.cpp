// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "dsn/common/error.hpp"
#include "dsn/obs/metrics.hpp"

namespace dsn::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double value) {
  std::ostringstream ss;
  ss.precision(3);
  ss << std::fixed << value;
  out += ss.str();
}

}  // namespace

TraceWriter::TraceWriter() : start_(std::chrono::steady_clock::now()) {
  events_.reserve(4096);
}

double TraceWriter::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

void TraceWriter::push(Event event) {
  LockGuard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceWriter::begin(const std::string& name) {
  push(Event{name, 'B', thread_index(), now_us(), 0.0, 0.0, {}});
}

void TraceWriter::end(const std::string& name) {
  push(Event{name, 'E', thread_index(), now_us(), 0.0, 0.0, {}});
}

void TraceWriter::complete(const std::string& name, double start_us,
                           double dur_us) {
  push(Event{name, 'X', thread_index(), start_us, dur_us, 0.0, {}});
}

void TraceWriter::counter(const std::string& name, double value) {
  push(Event{name, 'C', thread_index(), now_us(), 0.0, value, {}});
}

void TraceWriter::name_current_thread(const std::string& name) {
  name_thread(thread_index(), name);
}

void TraceWriter::name_thread(std::uint32_t tid, const std::string& name) {
  push(Event{"thread_name", 'M', tid, 0.0, 0.0, 0.0, name});
}

std::size_t TraceWriter::num_events() const {
  LockGuard lock(mutex_);
  return events_.size();
}

std::string TraceWriter::to_json() const {
  LockGuard lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_number(out, e.ts);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      append_number(out, e.dur);
    }
    if (e.ph == 'C') {
      out += ",\"args\":{\"value\":";
      append_number(out, e.value);
      out += '}';
    } else if (e.ph == 'M') {
      out += ",\"args\":{\"name\":\"";
      append_escaped(out, e.meta_value);
      out += "\"}";
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void TraceWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  DSN_REQUIRE(file.good(), "cannot open trace output file: " + path);
  file << to_json() << '\n';
  DSN_REQUIRE(file.good(), "failed writing trace output file: " + path);
}

namespace {

struct TraceState {
  Mutex mutex;
  std::atomic<TraceWriter*> active{nullptr};
  // Writers are never destroyed: spans capture raw pointers at construction
  // and may fire their E event after stop_trace. A trace session is a
  // handful of writers per process, so the leak is bounded and deliberate.
  std::vector<std::unique_ptr<TraceWriter>> writers DSN_GUARDED_BY(mutex);
  Mutex names_mutex;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names
      DSN_GUARDED_BY(names_mutex);
};

TraceState& trace_state() {
  static TraceState* state = new TraceState();  // immortal: spans outlive main
  return *state;
}

}  // namespace

TraceWriter* active_trace() {
  return trace_state().active.load(std::memory_order_acquire);
}

TraceWriter& start_trace() {
  TraceState& state = trace_state();
  LockGuard lock(state.mutex);
  auto writer = std::make_unique<TraceWriter>();
  TraceWriter* raw = writer.get();
  state.writers.push_back(std::move(writer));
  {
    // Replay remembered thread names so tracks started before this writer
    // (e.g. pool workers spawned at startup) are still labelled.
    LockGuard names_lock(state.names_mutex);
    for (const auto& [tid, name] : state.thread_names) {
      raw->name_thread(tid, name);
    }
  }
  state.active.store(raw, std::memory_order_release);
  return *raw;
}

bool stop_trace(const std::string& path) {
  TraceState& state = trace_state();
  TraceWriter* writer = nullptr;
  {
    // Only the detach happens under the state lock; serialising to disk can
    // take milliseconds and must not block start_trace or thread renames.
    // The retired writer is immortal (see TraceState::writers) and has its
    // own mutex, so writing it outside the state lock is safe even while
    // straggler spans still append events.
    LockGuard lock(state.mutex);
    writer = state.active.load(std::memory_order_acquire);
    if (writer == nullptr) return false;
    state.active.store(nullptr, std::memory_order_release);
  }
  writer->write_file(path);
  return true;
}

void set_current_thread_name(const std::string& name) {
  TraceState& state = trace_state();
  const std::uint32_t tid = thread_index();
  {
    // Last-wins per tid: a thread renaming itself replaces its remembered
    // entry instead of appending, so writers started later replay exactly
    // one (current) name per track and repeated renames cannot grow the
    // list without bound.
    LockGuard names_lock(state.names_mutex);
    bool replaced = false;
    for (auto& [known_tid, known_name] : state.thread_names) {
      if (known_tid == tid) {
        known_name = name;
        replaced = true;
        break;
      }
    }
    if (!replaced) state.thread_names.emplace_back(tid, name);
  }
  TraceWriter* writer = active_trace();
  if (writer != nullptr) writer->name_current_thread(name);
}

}  // namespace dsn::obs
