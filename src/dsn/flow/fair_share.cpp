// dsn-slint: deterministic — see fair_share.hpp.
#include "dsn/flow/fair_share.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "dsn/common/error.hpp"
#include "dsn/common/thread_pool.hpp"

namespace dsn::flow {

namespace {

/// Saturation threshold: a resource whose residual has fallen to numerical
/// noise relative to its capacity is full.
double saturation_eps(double capacity) { return 1e-9 * std::max(1.0, capacity); }

struct ShardRange {
  std::size_t begin, end;
};

ShardRange shard_range(std::size_t total, std::size_t shard, std::size_t shards) {
  return {total * shard / shards, total * (shard + 1) / shards};
}

}  // namespace

FairShareResult max_min_fair_rates(const std::vector<double>& capacity,
                                   const std::vector<std::uint32_t>& route_pool,
                                   const std::vector<std::uint64_t>& route_begin,
                                   std::uint32_t max_rounds, std::uint32_t shards) {
  DSN_REQUIRE(!route_begin.empty(), "route_begin must hold flows + 1 offsets");
  DSN_REQUIRE(route_begin.back() == route_pool.size(),
              "route_begin does not cover the route pool");
  const std::size_t flows = route_begin.size() - 1;
  const std::size_t caps = capacity.size();

  FairShareResult res;
  res.rate.assign(flows, 0.0);
  res.bottleneck.assign(flows, kNoBottleneck);
  if (flows == 0) return res;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t num_shards = std::max<std::size_t>(
      1, std::min<std::size_t>(flows, shards != 0 ? shards : 4 * pool.size()));

  // Residual capacity and the number of unfrozen flows crossing each
  // resource. Counts are plain integers mutated through relaxed atomic_ref:
  // additions commute, so the totals are exact for any shard interleaving.
  std::vector<double> residual = capacity;
  std::vector<std::uint32_t> count(caps, 0);
  std::vector<std::uint8_t> saturated(caps, 0);
  std::vector<std::uint8_t> frozen(flows, 0);

  pool.parallel_for(0, num_shards, [&](std::size_t k) {
    const auto [begin, end] = shard_range(flows, k, num_shards);
    for (std::size_t f = begin; f < end; ++f) {
      DSN_REQUIRE(route_begin[f + 1] > route_begin[f],
                  "every flow must cross at least one resource");
      for (std::uint64_t i = route_begin[f]; i < route_begin[f + 1]; ++i) {
        const std::uint32_t c = route_pool[i];
        DSN_REQUIRE(c < caps, "route resource index out of range");
        std::atomic_ref<std::uint32_t>(count[c]).fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Resources touched by any flow: the per-round scans only walk this list.
  std::vector<std::uint32_t> active_caps;
  for (std::size_t c = 0; c < caps; ++c) {
    if (count[c] > 0) {
      DSN_REQUIRE(capacity[c] > 0.0, "a used resource must have positive capacity");
      active_caps.push_back(static_cast<std::uint32_t>(c));
    }
  }
  const std::size_t cap_shards =
      std::max<std::size_t>(1, std::min(active_caps.size(), num_shards));

  // Every round saturates at least one resource, so the loop needs at most
  // |active resources| rounds; max_rounds 0 means exactly that natural bound.
  const std::uint32_t round_limit =
      max_rounds != 0 ? max_rounds
                      : static_cast<std::uint32_t>(
                            std::min<std::size_t>(active_caps.size(),
                                                  ~std::uint32_t{0}));
  std::size_t unfrozen = flows;
  while (unfrozen > 0 && res.rounds < round_limit) {
    ++res.rounds;

    // Equal increment for every unfrozen flow: the tightest residual share.
    // Per-shard minima merge with min — order-independent, so the increment
    // (and through it every rate) is bitwise reproducible.
    std::vector<double> shard_min(cap_shards, std::numeric_limits<double>::infinity());
    pool.parallel_for(0, cap_shards, [&](std::size_t k) {
      const auto [begin, end] = shard_range(active_caps.size(), k, cap_shards);
      double local = std::numeric_limits<double>::infinity();
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t c = active_caps[i];
        if (count[c] == 0) continue;
        local = std::min(local, residual[c] / count[c]);
      }
      shard_min[k] = local;
    });
    double share = std::numeric_limits<double>::infinity();
    for (const double m : shard_min) share = std::min(share, m);
    if (!std::isfinite(share)) break;  // no capacitated resource left (cannot happen)

    pool.parallel_for(0, num_shards, [&](std::size_t k) {
      const auto [begin, end] = shard_range(flows, k, num_shards);
      for (std::size_t f = begin; f < end; ++f) {
        if (frozen[f] == 0) res.rate[f] += share;
      }
    });

    pool.parallel_for(0, cap_shards, [&](std::size_t k) {
      const auto [begin, end] = shard_range(active_caps.size(), k, cap_shards);
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t c = active_caps[i];
        if (count[c] == 0) continue;
        residual[c] -= share * count[c];
        if (residual[c] <= saturation_eps(capacity[c])) saturated[c] = 1;
      }
    });

    // Freeze flows crossing a saturated resource; their counts leave the
    // sharing pool so the survivors split the remaining headroom.
    std::vector<std::uint64_t> shard_frozen(num_shards, 0);
    pool.parallel_for(0, num_shards, [&](std::size_t k) {
      const auto [begin, end] = shard_range(flows, k, num_shards);
      for (std::size_t f = begin; f < end; ++f) {
        if (frozen[f] != 0) continue;
        std::uint32_t bottleneck = kNoBottleneck;
        for (std::uint64_t i = route_begin[f]; i < route_begin[f + 1]; ++i) {
          if (saturated[route_pool[i]] != 0) {
            bottleneck = route_pool[i];
            break;
          }
        }
        if (bottleneck == kNoBottleneck) continue;
        frozen[f] = 1;
        res.bottleneck[f] = bottleneck;
        ++shard_frozen[k];
        for (std::uint64_t i = route_begin[f]; i < route_begin[f + 1]; ++i) {
          std::atomic_ref<std::uint32_t>(count[route_pool[i]])
              .fetch_sub(1, std::memory_order_relaxed);
        }
      }
    });
    for (const std::uint64_t n : shard_frozen) unfrozen -= n;
  }
  res.converged = unfrozen == 0;
  return res;
}

std::vector<std::string> check_max_min(const std::vector<double>& capacity,
                                       const std::vector<std::uint32_t>& route_pool,
                                       const std::vector<std::uint64_t>& route_begin,
                                       const FairShareResult& result, double tol,
                                       std::size_t max_violations) {
  const std::size_t flows = route_begin.size() - 1;
  const std::size_t caps = capacity.size();
  std::vector<std::string> violations;
  const auto report = [&](std::string msg) {
    if (violations.size() < max_violations) violations.push_back(std::move(msg));
  };

  // Serial index-order accumulation: usage and per-resource rate maxima.
  std::vector<double> usage(caps, 0.0);
  std::vector<double> max_rate(caps, 0.0);
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::uint64_t i = route_begin[f]; i < route_begin[f + 1]; ++i) {
      usage[route_pool[i]] += result.rate[f];
      max_rate[route_pool[i]] = std::max(max_rate[route_pool[i]], result.rate[f]);
    }
  }

  for (std::size_t c = 0; c < caps; ++c) {
    if (usage[c] > capacity[c] * (1.0 + tol)) {
      report("resource " + std::to_string(c) + " over capacity: usage " +
             std::to_string(usage[c]) + " > " + std::to_string(capacity[c]));
    }
  }
  for (std::size_t f = 0; f < flows; ++f) {
    const std::uint32_t c = result.bottleneck[f];
    if (c == kNoBottleneck) {
      if (result.converged)
        report("flow " + std::to_string(f) + " has no bottleneck on a converged solve");
      continue;
    }
    const double slack = capacity[c] * tol + tol;
    if (usage[c] < capacity[c] - slack) {
      report("flow " + std::to_string(f) + " bottleneck " + std::to_string(c) +
             " is not saturated: usage " + std::to_string(usage[c]) + " < capacity " +
             std::to_string(capacity[c]));
    }
    if (result.rate[f] + slack < max_rate[c]) {
      report("flow " + std::to_string(f) + " rate " + std::to_string(result.rate[f]) +
             " is not maximal at its bottleneck " + std::to_string(c) + " (max " +
             std::to_string(max_rate[c]) + ")");
    }
  }
  return violations;
}

}  // namespace dsn::flow
