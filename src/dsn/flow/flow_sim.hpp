// dsn-slint: deterministic — FlowResult feeds byte-identical replay gates
// across DSN_THREADS and shard counts; see fair_share.hpp for why every
// reduction in the tier is partition-independent.
//
// The flow-level simulation tier. Where the flit simulator moves individual
// flits cycle by cycle, this tier treats each demand as a fluid *flow* over
// its switch-level route and advances time in discrete epochs:
//
//   1. admit newly emitted demands (routes computed in parallel shards,
//      merged in shard order);
//   2. solve the max-min fair rate allocation over per-resource capacities
//      (directed link halves + host injection/ejection ports, each 1
//      flit/cycle like the flit sim) by progressive water-filling;
//   3. advance to the earliest flow completion (clamped to the configured
//      epoch bounds), retire completed flows at their exact completion time,
//      and hand them to the workload driver, which may emit successors.
//
// The tier is cross-validated against the flit simulator at small n
// (tests/test_flow_crossval.cpp) and scales to millions of hosts where the
// flit sim cannot go (bench/micro_flow.cpp, BENCH_flow.json).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsn/common/json.hpp"
#include "dsn/flow/fair_share.hpp"
#include "dsn/flow/routes.hpp"
#include "dsn/graph/csr.hpp"
#include "dsn/sim/demand.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn::flow {

struct FlowConfig {
  std::uint32_t hosts_per_switch = 4;  ///< matches SimConfig for cross-validation
  double link_bw_gbps = 96.0;          ///< per link per direction (SimConfig default)
  std::uint32_t flit_bits = 256;
  /// Capacities in flits/cycle — 1.0 each matches the flit sim's one flit
  /// per cycle per directed link half and per NIC direction.
  double link_capacity = 1.0;
  double host_capacity = 1.0;
  /// Epoch bounds: each epoch advances to the earliest flow completion,
  /// clamped into [min_epoch_cycles, max_epoch_cycles]. The floor batches
  /// completions when millions of flows would otherwise each trigger a
  /// water-filling solve; 1 = exact completion-event stepping.
  std::uint64_t min_epoch_cycles = 1;
  std::uint64_t max_epoch_cycles = 1ULL << 20;
  std::uint64_t max_epochs = 1ULL << 20;  ///< run aborts (converged=false) past this
  /// Per-solve round ceiling; 0 = the natural bound (one saturated resource
  /// per round, at most the number of used resources).
  std::uint32_t max_waterfill_rounds = 0;
  std::uint32_t shards = 0;                 ///< 0 = auto from the global pool
  std::uint32_t updown_max_n = 4096;        ///< FlowRoutes table fallback cap
  bool verify = false;  ///< run check_max_min on every solve (tests, dsn-lint)

  double cycle_ns() const { return static_cast<double>(flit_bits) / link_bw_gbps; }
  double flits_per_cycle_to_gbps(double rate) const { return rate * link_bw_gbps; }
  void validate() const;
};

struct FlowResult {
  std::string topology;
  std::string route_mode;
  std::string workload;
  std::uint64_t hosts = 0;
  std::uint64_t flows = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t flits_total = 0;
  double flits_delivered = 0.0;
  std::uint64_t epochs = 0;
  double makespan_cycles = 0.0;  ///< last completion time (exact, sub-epoch)
  std::uint32_t max_waterfill_rounds = 0;
  std::uint64_t waterfill_rounds_total = 0;
  /// True iff every water-filling solve converged, every flow completed and
  /// the epoch ceiling was not hit.
  bool converged = true;
  double aggregate_flits_per_cycle = 0.0;  ///< flits_delivered / makespan
  double per_host_flits_per_cycle = 0.0;
  double per_host_gbps = 0.0;
  double avg_fct_cycles = 0.0;
  double max_fct_cycles = 0.0;
  double avg_route_hops = 0.0;  ///< mean switch hops per flow
  std::uint64_t verify_violations = 0;  ///< check_max_min findings (verify only)
  std::string verify_first;             ///< first finding, for reports
};

/// Byte-stable JSON projection (key order fixed; doubles via Json's dump).
Json to_json(const FlowResult& result);

/// Closed-loop demand source. The simulator admits demands in emission order
/// and reports completions in admission order at exact completion times, so
/// driver state evolves deterministically.
class WorkloadDriver {
 public:
  virtual ~WorkloadDriver() = default;
  virtual const char* name() const = 0;
  /// Emit the initial demand wave.
  virtual void start(std::vector<Demand>& out) = 0;
  /// Demand `index` (global admission order) completed at `cycle`; append
  /// successor demands to `out`.
  virtual void on_complete(std::uint64_t index, double cycle, std::vector<Demand>& out) = 0;
};

class FlowSimulator {
 public:
  FlowSimulator(const Topology& topo, const FlowConfig& config);

  /// Run a static demand batch to completion (all demands start at cycle 0).
  FlowResult run(const std::vector<Demand>& demands);
  /// Run a closed-loop workload to completion.
  FlowResult run(WorkloadDriver& driver);

  const FlowRoutes& routes() const { return *routes_; }
  std::uint32_t num_hosts() const { return num_hosts_; }

 private:
  struct Flows {
    std::vector<HostId> src, dst;
    std::vector<double> remaining;   // flits left
    std::vector<std::uint64_t> size; // original flits
    std::vector<double> fct;         // completion cycle (set on retire)
    std::vector<std::uint64_t> route_begin;  // size flows+1, into pool
    std::vector<std::uint32_t> pool;         // resource ids
    std::size_t count() const { return src.size(); }
  };

  void admit(const std::vector<Demand>& demands);
  FlowResult run_loop(WorkloadDriver& driver);
  /// Map the switch path of (src, dst) to resource ids: injection port,
  /// first matching directed arc per hop, ejection port.
  void map_route(HostId src, HostId dst, FlowRoutes::Scratch& scratch,
                 std::vector<NodeId>& path, std::vector<std::uint32_t>& out) const;

  const Topology* topo_;
  FlowConfig config_;
  CsrView csr_;
  std::vector<std::uint64_t> row_off_;  ///< node -> first arc index in csr_
  std::vector<double> capacity_;        ///< arcs, then inject, then eject
  std::unique_ptr<FlowRoutes> routes_;
  std::uint32_t num_hosts_ = 0;

  Flows flows_;
  std::vector<std::uint32_t> active_;  ///< open flow ids, admission order
};

}  // namespace dsn::flow
