// dsn-slint: deterministic — see workload.hpp.
#include "dsn/flow/workload.hpp"

#include <algorithm>

#include "dsn/common/error.hpp"
#include "dsn/common/rng.hpp"

namespace dsn::flow {

void WorkloadParams::validate() const {
  DSN_REQUIRE(hosts > 0, "workload needs a host count");
  DSN_REQUIRE(rack_hosts > 0, "rack size must be positive");
  DSN_REQUIRE(clients > 0 && clients <= hosts,
              "need 1 <= clients <= hosts participants");
  DSN_REQUIRE(units > 0 && unit_flits > 0, "work units must be non-empty");
  DSN_REQUIRE(window > 0, "need at least one flow in flight per participant");
}

namespace {

std::uint32_t rack_of(const WorkloadParams& p, HostId h) { return h / p.rack_hosts; }

std::uint32_t num_racks(const WorkloadParams& p) {
  return (p.hosts + p.rack_hosts - 1) / p.rack_hosts;
}

/// Seeded sample of `count` distinct hosts (rejection against a dense bitmap;
/// callers guarantee count <= hosts).
std::vector<HostId> sample_hosts(std::uint32_t count, std::uint32_t hosts, Rng& rng) {
  std::vector<std::uint8_t> used(hosts, 0);
  std::vector<HostId> out;
  out.reserve(count);
  while (out.size() < count) {
    const HostId h = static_cast<HostId>(rng.next_below(hosts));
    if (used[h]) continue;
    used[h] = 1;
    out.push_back(h);
  }
  return out;
}

/// Any host other than `avoid` (requires hosts >= 2).
HostId other_host(const WorkloadParams& p, HostId avoid, Rng& rng) {
  for (;;) {
    const HostId h = static_cast<HostId>(rng.next_below(p.hosts));
    if (h != avoid) return h;
  }
}

/// A host in a different rack than `h`; falls back to any other host when the
/// cluster has a single rack.
HostId remote_rack_host(const WorkloadParams& p, HostId h, Rng& rng) {
  if (num_racks(p) <= 1) return other_host(p, h, rng);
  for (;;) {
    const HostId c = static_cast<HostId>(rng.next_below(p.hosts));
    if (rack_of(p, c) != rack_of(p, h)) return c;
  }
}

/// A host in the same rack as `h` but distinct from it; falls back to any
/// other host when `h` is alone in its rack.
HostId same_rack_host(const WorkloadParams& p, HostId h, Rng& rng) {
  const std::uint32_t base = rack_of(p, h) * p.rack_hosts;
  const std::uint32_t size = std::min(p.rack_hosts, p.hosts - base);
  if (size <= 1) return other_host(p, h, rng);
  for (;;) {
    const HostId c = static_cast<HostId>(base + rng.next_below(size));
    if (c != h) return c;
  }
}

/// HDFS-style bulk I/O. Read mode: each client pulls `units` blocks from
/// seeded replica hosts. Write mode: each block runs a two-stage replication
/// pipeline — client -> remote-rack replica, then replica -> a same-rack third
/// copy — chained through completions (the stage-one copy must land before
/// stage two starts, like a pipelined HDFS write acknowledges downstream).
class HdfsDriver final : public WorkloadDriver {
 public:
  HdfsDriver(const WorkloadParams& params, bool write)
      : p_(params), write_(write), rng_(params.seed) {
    clients_ = sample_hosts(p_.clients, p_.hosts, rng_);
    next_block_.assign(p_.clients, 0);
    outstanding_.assign(p_.clients, 0);
  }

  const char* name() const override { return write_ ? "hdfs-write" : "hdfs-read"; }

  void start(std::vector<Demand>& out) override {
    for (std::uint32_t c = 0; c < p_.clients; ++c) {
      while (outstanding_[c] < p_.window && next_block_[c] < p_.units)
        emit_block(c, out);
    }
  }

  void on_complete(std::uint64_t index, double, std::vector<Demand>& out) override {
    const Meta m = meta_[index];
    if (m.stage == 0 && write_) {
      // First replica landed; forward the block to the third copy in-rack.
      const HostId mid = meta_src_[index];
      meta_.push_back({m.client, 1});
      meta_src_.push_back(0);
      out.push_back({mid, same_rack_host(p_, mid, rng_), p_.unit_flits});
      return;
    }
    --outstanding_[m.client];
    if (next_block_[m.client] < p_.units) emit_block(m.client, out);
  }

 private:
  struct Meta {
    std::uint32_t client;
    std::uint8_t stage;  // write mode: 0 = client->r2, 1 = r2->r3
  };

  void emit_block(std::uint32_t c, std::vector<Demand>& out) {
    ++next_block_[c];
    ++outstanding_[c];
    const HostId client = clients_[c];
    if (write_) {
      const HostId r2 = remote_rack_host(p_, client, rng_);
      meta_.push_back({c, 0});
      meta_src_.push_back(r2);
      out.push_back({client, r2, p_.unit_flits});
    } else {
      meta_.push_back({c, 0});
      meta_src_.push_back(0);
      out.push_back({other_host(p_, client, rng_), client, p_.unit_flits});
    }
  }

  WorkloadParams p_;
  bool write_;
  Rng rng_;
  std::vector<HostId> clients_;
  std::vector<std::uint32_t> next_block_;   // blocks started, per client
  std::vector<std::uint32_t> outstanding_;  // open blocks, per client
  std::vector<Meta> meta_;                  // per emitted demand
  std::vector<HostId> meta_src_;            // stage-0 replica host (write mode)
};

/// Hadoop sort shuffle: `clients` mappers and `clients` reducers on disjoint
/// seeded hosts; every reducer fetches one partition from every mapper in a
/// seeded per-reducer order, `window` fetches in flight.
class ShuffleDriver final : public WorkloadDriver {
 public:
  explicit ShuffleDriver(const WorkloadParams& params) : p_(params), rng_(params.seed) {
    DSN_REQUIRE(2ULL * p_.clients <= p_.hosts,
                "shuffle places mappers and reducers on disjoint hosts");
    const std::vector<HostId> placed = sample_hosts(2 * p_.clients, p_.hosts, rng_);
    mappers_.assign(placed.begin(), placed.begin() + p_.clients);
    reducers_.assign(placed.begin() + p_.clients, placed.end());
    fetch_order_.resize(p_.clients);
    for (std::uint32_t r = 0; r < p_.clients; ++r) {
      fetch_order_[r].resize(p_.clients);
      for (std::uint32_t m = 0; m < p_.clients; ++m) fetch_order_[r][m] = m;
      // Fisher–Yates with the shared seeded stream.
      for (std::uint32_t i = p_.clients - 1; i > 0; --i)
        std::swap(fetch_order_[r][i], fetch_order_[r][rng_.next_below(i + 1)]);
    }
    next_fetch_.assign(p_.clients, 0);
  }

  const char* name() const override { return "shuffle"; }

  void start(std::vector<Demand>& out) override {
    for (std::uint32_t r = 0; r < p_.clients; ++r) {
      const std::uint32_t burst = std::min(p_.window, p_.clients);
      for (std::uint32_t i = 0; i < burst; ++i) emit_fetch(r, out);
    }
  }

  void on_complete(std::uint64_t index, double, std::vector<Demand>& out) override {
    const std::uint32_t r = reducer_of_[index];
    if (next_fetch_[r] < p_.clients) emit_fetch(r, out);
  }

 private:
  void emit_fetch(std::uint32_t r, std::vector<Demand>& out) {
    const std::uint32_t m = fetch_order_[r][next_fetch_[r]++];
    reducer_of_.push_back(r);
    out.push_back({mappers_[m], reducers_[r], p_.unit_flits});
  }

  WorkloadParams p_;
  Rng rng_;
  std::vector<HostId> mappers_, reducers_;
  std::vector<std::vector<std::uint32_t>> fetch_order_;  // per reducer
  std::vector<std::uint32_t> next_fetch_;
  std::vector<std::uint32_t> reducer_of_;  // per emitted demand
};

/// Barrier-synchronised wave driver: the all-reduce variants precompute their
/// transfer schedule as a list of waves; wave w+1 starts when every flow of
/// wave w has completed (the collective's step barrier).
class WaveDriver final : public WorkloadDriver {
 public:
  WaveDriver(std::string name, std::vector<std::vector<Demand>> waves)
      : name_(std::move(name)), waves_(std::move(waves)) {}

  const char* name() const override { return name_.c_str(); }

  void start(std::vector<Demand>& out) override { emit_wave(out); }

  void on_complete(std::uint64_t, double, std::vector<Demand>& out) override {
    if (--outstanding_ == 0) emit_wave(out);
  }

 private:
  void emit_wave(std::vector<Demand>& out) {
    while (wave_ < waves_.size()) {
      const std::vector<Demand>& w = waves_[wave_++];
      if (w.empty()) continue;
      outstanding_ = w.size();
      out.insert(out.end(), w.begin(), w.end());
      return;
    }
  }

  std::string name_;
  std::vector<std::vector<Demand>> waves_;
  std::size_t wave_ = 0;
  std::size_t outstanding_ = 0;
};

/// Ring all-reduce over k seeded ranks: 2(k-1) steps; in every step each rank
/// passes one chunk (unit_flits / k, floored at 1) to its ring successor.
std::unique_ptr<WorkloadDriver> make_allreduce_ring(const WorkloadParams& p) {
  Rng rng(p.seed);
  const std::vector<HostId> ranks = sample_hosts(p.clients, p.hosts, rng);
  const std::uint32_t k = p.clients;
  const std::uint64_t chunk = std::max<std::uint64_t>(1, p.unit_flits / k);
  std::vector<std::vector<Demand>> waves;
  if (k > 1) {
    waves.assign(2ULL * (k - 1), {});
    for (auto& wave : waves) {
      wave.reserve(k);
      for (std::uint32_t i = 0; i < k; ++i)
        wave.push_back({ranks[i], ranks[(i + 1) % k], chunk});
    }
  }
  return std::make_unique<WaveDriver>("allreduce-ring", std::move(waves));
}

/// Binary-tree all-reduce: ranks in heap layout (children of i are 2i+1 and
/// 2i+2); reduce up one level per wave, then broadcast down, full buffers.
std::unique_ptr<WorkloadDriver> make_allreduce_tree(const WorkloadParams& p) {
  Rng rng(p.seed);
  const std::vector<HostId> ranks = sample_hosts(p.clients, p.hosts, rng);
  const std::uint32_t k = p.clients;
  std::vector<std::vector<std::uint32_t>> levels;  // rank indices per depth
  for (std::uint32_t i = 0; i < k; ++i) {
    std::uint32_t depth = 0;
    for (std::uint32_t v = i; v > 0; v = (v - 1) / 2) ++depth;
    if (depth >= levels.size()) levels.resize(depth + 1);
    levels[depth].push_back(i);
  }
  std::vector<std::vector<Demand>> waves;
  for (std::size_t d = levels.size(); d-- > 1;) {  // reduce: deepest level first
    std::vector<Demand> wave;
    for (const std::uint32_t i : levels[d])
      wave.push_back({ranks[i], ranks[(i - 1) / 2], p.unit_flits});
    waves.push_back(std::move(wave));
  }
  for (std::size_t d = 1; d < levels.size(); ++d) {  // broadcast: root outward
    std::vector<Demand> wave;
    for (const std::uint32_t i : levels[d])
      wave.push_back({ranks[(i - 1) / 2], ranks[i], p.unit_flits});
    waves.push_back(std::move(wave));
  }
  return std::make_unique<WaveDriver>("allreduce-tree", std::move(waves));
}

/// Storage rebuild after a host loss: clients * units lost blocks, each
/// re-replicated from a seeded surviving source to a seeded target (both
/// distinct from the lost host), clients * window transfers in flight.
class RebuildDriver final : public WorkloadDriver {
 public:
  explicit RebuildDriver(const WorkloadParams& params) : p_(params), rng_(params.seed) {
    DSN_REQUIRE(p_.hosts >= 3, "rebuild needs a lost host plus source and target");
    lost_ = static_cast<HostId>(rng_.next_below(p_.hosts));
    blocks_ = static_cast<std::uint64_t>(p_.clients) * p_.units;
  }

  const char* name() const override { return "rebuild"; }

  void start(std::vector<Demand>& out) override {
    const std::uint64_t burst =
        std::min<std::uint64_t>(blocks_, static_cast<std::uint64_t>(p_.clients) * p_.window);
    for (std::uint64_t i = 0; i < burst; ++i) emit_block(out);
  }

  void on_complete(std::uint64_t, double, std::vector<Demand>& out) override {
    if (started_ < blocks_) emit_block(out);
  }

 private:
  void emit_block(std::vector<Demand>& out) {
    ++started_;
    const HostId src = other_host(p_, lost_, rng_);
    HostId dst = other_host(p_, lost_, rng_);
    while (dst == src) dst = other_host(p_, lost_, rng_);
    out.push_back({src, dst, p_.unit_flits});
  }

  WorkloadParams p_;
  Rng rng_;
  HostId lost_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t started_ = 0;
};

}  // namespace

std::unique_ptr<WorkloadDriver> make_workload(const std::string& name,
                                              const WorkloadParams& params) {
  params.validate();
  if (name == "hdfs-read") return std::make_unique<HdfsDriver>(params, false);
  if (name == "hdfs-write") return std::make_unique<HdfsDriver>(params, true);
  if (name == "shuffle") return std::make_unique<ShuffleDriver>(params);
  if (name == "allreduce-ring") return make_allreduce_ring(params);
  if (name == "allreduce-tree") return make_allreduce_tree(params);
  if (name == "rebuild") return std::make_unique<RebuildDriver>(params);
  DSN_REQUIRE(false, "unknown workload: " + name);
  return nullptr;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "hdfs-read", "hdfs-write", "shuffle",
      "allreduce-ring", "allreduce-tree", "rebuild"};
  return names;
}

std::vector<Demand> expand_all_demands(WorkloadDriver& driver) {
  std::vector<Demand> all;
  driver.start(all);
  for (std::size_t i = 0; i < all.size(); ++i) driver.on_complete(i, 0.0, all);
  return all;
}

}  // namespace dsn::flow
