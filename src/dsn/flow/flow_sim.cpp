// dsn-slint: deterministic — see flow_sim.hpp.
#include "dsn/flow/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsn/common/error.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/obs/obs.hpp"

namespace dsn::flow {

#if DSN_OBS
namespace {

struct FlowMetrics {
  obs::MetricId flows = obs::MetricsRegistry::global().counter("dsn.flow.flows");
  obs::MetricId completed =
      obs::MetricsRegistry::global().counter("dsn.flow.flows_completed");
  obs::MetricId epochs = obs::MetricsRegistry::global().counter("dsn.flow.epochs");
  obs::MetricId waterfill_rounds =
      obs::MetricsRegistry::global().counter("dsn.flow.waterfill_rounds");
  obs::MetricId active = obs::MetricsRegistry::global().gauge("dsn.flow.active_flows");
  obs::MetricId fct_cycles = obs::MetricsRegistry::global().histogram(
      "dsn.flow.fct_cycles",
      {256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304});

  static const FlowMetrics& get() {
    static FlowMetrics metrics;
    return metrics;
  }
};

}  // namespace
#endif  // DSN_OBS

void FlowConfig::validate() const {
  DSN_REQUIRE(hosts_per_switch > 0, "need at least one host per switch");
  DSN_REQUIRE(link_capacity > 0.0 && host_capacity > 0.0,
              "capacities must be positive");
  DSN_REQUIRE(min_epoch_cycles > 0, "epoch floor must be positive");
  DSN_REQUIRE(max_epoch_cycles >= min_epoch_cycles,
              "epoch ceiling below the floor");
  DSN_REQUIRE(max_epochs > 0, "epoch ceiling must be positive");
}

FlowSimulator::FlowSimulator(const Topology& topo, const FlowConfig& config)
    : topo_(&topo), config_(config), csr_(topo.graph) {
  config_.validate();
  num_hosts_ = topo.num_nodes() * config_.hosts_per_switch;

  const NodeId n = csr_.num_nodes();
  row_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) row_off_[u + 1] = row_off_[u] + csr_.degree(u);

  // Resource capacities: one per directed arc, then per-host injection and
  // ejection ports. Parallel (u, v) links pool their bandwidth on the first
  // arc of the pair (map_route always picks the first), so the remaining
  // parallel arcs are never referenced.
  const std::size_t arcs = csr_.num_arcs();
  capacity_.assign(arcs + 2ULL * num_hosts_, config_.host_capacity);
  for (NodeId u = 0; u < n; ++u) {
    const auto nb = csr_.neighbors(u);
    for (std::size_t k = 0; k < nb.size(); ++k) {
      std::size_t mult = 0;
      bool first = true;
      for (std::size_t j = 0; j < nb.size(); ++j) {
        if (nb[j] != nb[k]) continue;
        ++mult;
        if (j < k) first = false;
      }
      capacity_[row_off_[u] + k] =
          first ? config_.link_capacity * static_cast<double>(mult)
                : config_.link_capacity;
    }
  }

  routes_ = std::make_unique<FlowRoutes>(topo, csr_, config_.updown_max_n);
}

void FlowSimulator::map_route(HostId src, HostId dst, FlowRoutes::Scratch& scratch,
                              std::vector<NodeId>& path,
                              std::vector<std::uint32_t>& out) const {
  DSN_REQUIRE(src < num_hosts_ && dst < num_hosts_, "demand host id out of range");
  const std::size_t arcs = csr_.num_arcs();
  out.push_back(static_cast<std::uint32_t>(arcs + src));
  routes_->switch_path(src / config_.hosts_per_switch, dst / config_.hosts_per_switch,
                       scratch, path);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId from = path[i], to = path[i + 1];
    const auto nb = csr_.neighbors(from);
    std::size_t k = 0;
    while (k < nb.size() && nb[k] != to) ++k;
    DSN_REQUIRE(k < nb.size(), "route hop is not a physical link");
    out.push_back(static_cast<std::uint32_t>(row_off_[from] + k));
  }
  out.push_back(static_cast<std::uint32_t>(arcs + num_hosts_ + dst));
}

void FlowSimulator::admit(const std::vector<Demand>& demands) {
  const std::size_t base = flows_.count();
  const std::size_t nd = demands.size();
  ThreadPool& pool = ThreadPool::global();
  const std::size_t num_shards = std::max<std::size_t>(
      1, std::min<std::size_t>(nd, config_.shards != 0 ? config_.shards
                                                       : 4 * pool.size()));

  // Routes per shard, merged in shard (= demand) order.
  std::vector<std::vector<std::uint32_t>> shard_pool(num_shards);
  std::vector<std::vector<std::uint32_t>> shard_len(num_shards);
  pool.parallel_for(0, num_shards, [&](std::size_t k) {
    const std::size_t begin = nd * k / num_shards;
    const std::size_t end = nd * (k + 1) / num_shards;
    FlowRoutes::Scratch scratch;
    std::vector<NodeId> path;
    std::vector<std::uint32_t> route;
    for (std::size_t i = begin; i < end; ++i) {
      route.clear();
      map_route(demands[i].src, demands[i].dst, scratch, path, route);
      shard_len[k].push_back(static_cast<std::uint32_t>(route.size()));
      shard_pool[k].insert(shard_pool[k].end(), route.begin(), route.end());
    }
  });

  if (flows_.route_begin.empty()) flows_.route_begin.push_back(0);
  std::size_t i = 0;
  for (std::size_t k = 0; k < num_shards; ++k) {
    flows_.pool.insert(flows_.pool.end(), shard_pool[k].begin(), shard_pool[k].end());
    for (const std::uint32_t len : shard_len[k]) {
      const Demand& d = demands[i++];
      DSN_REQUIRE(d.flits > 0, "demands must carry at least one flit");
      flows_.src.push_back(d.src);
      flows_.dst.push_back(d.dst);
      flows_.remaining.push_back(static_cast<double>(d.flits));
      flows_.size.push_back(d.flits);
      flows_.fct.push_back(0.0);
      flows_.route_begin.push_back(flows_.route_begin.back() + len);
    }
  }
  active_.reserve(active_.size() + nd);
  for (std::size_t f = 0; f < nd; ++f)
    active_.push_back(static_cast<std::uint32_t>(base + f));
  DSN_OBS_ONLY(DSN_OBS_ADD(FlowMetrics::get().flows, nd);)
}

namespace {

/// Adapter running a static demand batch through the closed-loop path.
class StaticDriver final : public WorkloadDriver {
 public:
  explicit StaticDriver(const std::vector<Demand>& demands) : demands_(&demands) {}
  const char* name() const override { return "static"; }
  void start(std::vector<Demand>& out) override {
    out.insert(out.end(), demands_->begin(), demands_->end());
  }
  void on_complete(std::uint64_t, double, std::vector<Demand>&) override {}

 private:
  const std::vector<Demand>* demands_;
};

}  // namespace

FlowResult FlowSimulator::run(const std::vector<Demand>& demands) {
  StaticDriver driver(demands);
  return run_loop(driver);
}

FlowResult FlowSimulator::run(WorkloadDriver& driver) { return run_loop(driver); }

FlowResult FlowSimulator::run_loop(WorkloadDriver& driver) {
  DSN_OBS_SPAN("flow.run");
  FlowResult res;
  res.topology = topo_->name;
  res.route_mode = routes_->mode();
  res.workload = driver.name();
  res.hosts = num_hosts_;

  std::vector<Demand> pending;
  driver.start(pending);

  double now = 0.0;
  double fct_duration_sum = 0.0;
  std::vector<double> admit_cycle;  // per flow, parallel to flows_
  std::vector<std::uint64_t> solve_begin;
  std::vector<std::uint32_t> solve_pool;
  std::vector<std::pair<std::uint32_t, double>> completed;  // (flow, fct)

  while (true) {
    if (!pending.empty()) {
      admit(pending);
      admit_cycle.resize(flows_.count(), now);
      pending.clear();
    }
    if (active_.empty()) break;
    if (res.epochs == config_.max_epochs) {
      res.converged = false;
      break;
    }
    ++res.epochs;
    DSN_OBS_ONLY(DSN_OBS_ADD(FlowMetrics::get().epochs, 1);)
    DSN_OBS_ONLY(DSN_OBS_GAUGE_SET(FlowMetrics::get().active,
                                   static_cast<std::int64_t>(active_.size()));)

    // Restrict the fair-share problem to the open flows (admission order).
    solve_begin.assign(1, 0);
    solve_pool.clear();
    for (const std::uint32_t f : active_) {
      solve_pool.insert(solve_pool.end(), flows_.pool.begin() + flows_.route_begin[f],
                        flows_.pool.begin() + flows_.route_begin[f + 1]);
      solve_begin.push_back(solve_pool.size());
    }
    const FairShareResult fs = max_min_fair_rates(
        capacity_, solve_pool, solve_begin, config_.max_waterfill_rounds,
        config_.shards);
    res.max_waterfill_rounds = std::max(res.max_waterfill_rounds, fs.rounds);
    res.waterfill_rounds_total += fs.rounds;
    DSN_OBS_ONLY(DSN_OBS_ADD(FlowMetrics::get().waterfill_rounds, fs.rounds);)
    if (!fs.converged) res.converged = false;
    if (config_.verify) {
      const std::vector<std::string> violations =
          check_max_min(capacity_, solve_pool, solve_begin, fs);
      res.verify_violations += violations.size();
      if (res.verify_first.empty() && !violations.empty())
        res.verify_first = violations.front();
    }

    // Earliest completion under the solved rates; clamp into the epoch
    // bounds. All of this is serial in admission order.
    double t_min = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (fs.rate[i] > 0.0)
        t_min = std::min(t_min, flows_.remaining[active_[i]] / fs.rate[i]);
    }
    if (!std::isfinite(t_min)) {
      res.converged = false;  // a zero-rate flow can never finish
      break;
    }
    const double dt =
        std::clamp(t_min, static_cast<double>(config_.min_epoch_cycles),
                   static_cast<double>(config_.max_epoch_cycles));

    completed.clear();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const std::uint32_t f = active_[i];
      const double rate = fs.rate[i];
      const double delivered = rate * dt;
      if (rate > 0.0 && flows_.remaining[f] <= delivered * (1.0 + 1e-12)) {
        const double fct = now + flows_.remaining[f] / rate;
        res.flits_delivered += flows_.remaining[f];
        flows_.remaining[f] = 0.0;
        flows_.fct[f] = fct;
        completed.emplace_back(f, fct);
      } else {
        flows_.remaining[f] -= delivered;
        res.flits_delivered += delivered;
        active_[kept++] = f;
      }
    }
    active_.resize(kept);
    now += dt;

    for (const auto& [f, fct] : completed) {
      ++res.flows_completed;
      const double duration = fct - admit_cycle[f];
      fct_duration_sum += duration;
      res.max_fct_cycles = std::max(res.max_fct_cycles, duration);
      res.makespan_cycles = std::max(res.makespan_cycles, fct);
      DSN_OBS_ONLY(DSN_OBS_ADD(FlowMetrics::get().completed, 1);)
      DSN_OBS_ONLY(DSN_OBS_OBSERVE(FlowMetrics::get().fct_cycles,
                                   static_cast<std::uint64_t>(duration));)
      driver.on_complete(f, fct, pending);
    }
  }

  res.flows = flows_.count();
  if (!active_.empty()) res.converged = false;
  for (const std::uint64_t s : flows_.size) res.flits_total += s;
  std::uint64_t switch_hops = 0;
  for (std::size_t f = 0; f < flows_.count(); ++f) {
    // Route resources = inject + arcs + eject, so arcs = len - 2.
    switch_hops += flows_.route_begin[f + 1] - flows_.route_begin[f] - 2;
  }
  if (res.flows > 0)
    res.avg_route_hops = static_cast<double>(switch_hops) / static_cast<double>(res.flows);
  if (res.flows_completed > 0)
    res.avg_fct_cycles = fct_duration_sum / static_cast<double>(res.flows_completed);
  if (res.makespan_cycles > 0.0) {
    res.aggregate_flits_per_cycle = res.flits_delivered / res.makespan_cycles;
    res.per_host_flits_per_cycle =
        res.aggregate_flits_per_cycle / static_cast<double>(num_hosts_);
    res.per_host_gbps = config_.flits_per_cycle_to_gbps(res.per_host_flits_per_cycle);
  }
  return res;
}

Json to_json(const FlowResult& r) {
  Json j = Json::object();
  j.set("topology", r.topology);
  j.set("route_mode", r.route_mode);
  j.set("workload", r.workload);
  j.set("hosts", r.hosts);
  j.set("flows", r.flows);
  j.set("flows_completed", r.flows_completed);
  j.set("flits_total", r.flits_total);
  j.set("flits_delivered", r.flits_delivered);
  j.set("epochs", r.epochs);
  j.set("makespan_cycles", r.makespan_cycles);
  j.set("max_waterfill_rounds", static_cast<std::uint64_t>(r.max_waterfill_rounds));
  j.set("waterfill_rounds_total", r.waterfill_rounds_total);
  j.set("converged", r.converged);
  j.set("aggregate_flits_per_cycle", r.aggregate_flits_per_cycle);
  j.set("per_host_flits_per_cycle", r.per_host_flits_per_cycle);
  j.set("per_host_gbps", r.per_host_gbps);
  j.set("avg_fct_cycles", r.avg_fct_cycles);
  j.set("max_fct_cycles", r.max_fct_cycles);
  j.set("avg_route_hops", r.avg_route_hops);
  j.set("verify_violations", r.verify_violations);
  j.set("verify_first", r.verify_first);
  return j;
}

}  // namespace dsn::flow
