// dsn-slint: deterministic — driver RNG streams are seeded and consumed
// serially; completions arrive in admission order, so successor demands are a
// pure function of (params, seed).
//
// Closed-loop datacenter workload drivers for the flow tier. Each driver
// emits an initial demand wave and reacts to flow completions with successor
// demands, modelling the dependency structure of the application:
//
//   hdfs-read      — clients stream blocks from seeded replica hosts, at most
//                    `window` outstanding block reads per client;
//   hdfs-write     — per block, a two-stage replication pipeline (client to a
//                    remote-rack replica, then intra-rack to the third copy),
//                    chained through completions;
//   shuffle        — all-to-all sort shuffle: every reducer fetches one
//                    partition from every mapper, in a seeded per-reducer
//                    order, `window` fetches in flight per reducer;
//   allreduce-ring — ring all-reduce: 2(k-1) barrier-synchronised steps of k
//                    neighbour transfers of one chunk each;
//   allreduce-tree — binary-tree reduce then broadcast, one barrier per level;
//   rebuild        — storage rebuild after a host loss: surviving replicas
//                    re-replicate the lost blocks many-to-many, window-limited.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsn/flow/flow_sim.hpp"

namespace dsn::flow {

struct WorkloadParams {
  std::uint32_t hosts = 0;         ///< total hosts in the topology (required)
  std::uint32_t rack_hosts = 32;   ///< hosts per rack, for replica placement
  std::uint32_t clients = 16;      ///< participants (clients/mappers/ranks)
  std::uint32_t units = 8;         ///< work units per participant (blocks, ...)
  std::uint64_t unit_flits = 256;  ///< flits per unit (block/partition/buffer)
  std::uint32_t window = 4;        ///< concurrent flows per participant
  std::uint64_t seed = 1;
  void validate() const;
};

/// Construct a driver by name: "hdfs-read", "hdfs-write", "shuffle",
/// "allreduce-ring", "allreduce-tree", "rebuild". Throws PreconditionError
/// for unknown names or infeasible params (e.g. more clients than hosts).
std::unique_ptr<WorkloadDriver> make_workload(const std::string& name,
                                              const WorkloadParams& params);

/// All workload names accepted by make_workload, in documentation order.
const std::vector<std::string>& workload_names();

/// Flatten a driver into the full demand set it would ever emit, by replaying
/// completions at cycle 0 in admission order. The result loses the driver's
/// dependency structure (everything becomes concurrent) — use it to hand the
/// *same* batch to both simulation tiers in cross-validation, where identical
/// concurrency matters more than closed-loop realism.
std::vector<Demand> expand_all_demands(WorkloadDriver& driver);

}  // namespace dsn::flow
