// dsn-slint: deterministic — see routes.hpp.
#include "dsn/flow/routes.hpp"

#include <algorithm>

#include "dsn/common/error.hpp"

namespace dsn::flow {

namespace {

/// Recover the DLN's forward shortcut spans from the physical graph: node 0
/// carries one shortcut per span class, to node `span` (forward half) and
/// from node `n - span` (backward half of the undirected link). Spans are
/// always <= n/2 by construction, so the two halves are told apart by size.
std::vector<std::uint32_t> dln_spans(const Topology& topo) {
  const std::uint32_t n = topo.num_nodes();
  std::vector<std::uint32_t> spans;
  for (const AdjHalf& h : topo.graph.neighbors(0)) {
    if (h.link >= topo.link_roles.size() || topo.link_roles[h.link] != LinkRole::kShortcut)
      continue;
    const std::uint32_t forward = h.to;  // (0 + span) % n == h.to
    const std::uint32_t span = forward <= n - forward ? forward : n - forward;
    if (span > 1) spans.push_back(span);
  }
  std::sort(spans.begin(), spans.end(), std::greater<>());
  spans.erase(std::unique(spans.begin(), spans.end()), spans.end());
  return spans;
}

}  // namespace

FlowRoutes::FlowRoutes(const Topology& topo, const CsrView& csr,
                       std::uint32_t updown_max_n)
    : topo_(&topo), csr_(&csr) {
  using analyze::RoutingFamily;
  switch (topo.kind) {
    case TopologyKind::kDsn:
    case TopologyKind::kDsnE:
    case TopologyKind::kDsnBidir:
      mode_ = "dsn";
      bound_ = analyze::make_route_function(topo, RoutingFamily::kDsn);
      return;
    case TopologyKind::kDsnD:
      mode_ = "dsn-d";
      bound_ = analyze::make_route_function(topo, RoutingFamily::kDsnD);
      return;
    case TopologyKind::kTorus2D:
    case TopologyKind::kTorus3D:
      mode_ = "dor";
      bound_ = analyze::make_route_function(topo, RoutingFamily::kTorusDor);
      return;
    case TopologyKind::kKleinberg:
      mode_ = "greedy";
      bound_ = analyze::make_route_function(topo, RoutingFamily::kGreedyGrid);
      return;
    case TopologyKind::kDln:
      mode_ = "dln-jump";
      spans_ = dln_spans(topo);
      return;
    default:
      break;
  }
  if (topo.num_nodes() <= updown_max_n) {
    mode_ = "updown";
    bound_ = analyze::make_route_function(topo, RoutingFamily::kUpDown);
  } else {
    mode_ = "bfs";
  }
}

void FlowRoutes::switch_path(NodeId s, NodeId t, Scratch& scratch,
                             std::vector<NodeId>& path) const {
  path.clear();
  if (s == t) {
    path.push_back(s);
    return;
  }
  if (bound_.route) {
    const Route r = bound_.route(s, t);
    path.push_back(s);
    for (const RouteHop& h : r.hops) path.push_back(h.to);
    return;
  }
  if (mode_ == "dln-jump") {
    // Greedy clockwise distance-halving: always take the largest span that
    // does not overshoot, else step the ring. The clockwise distance strictly
    // decreases every hop, so the walk terminates loop-free in
    // O(spans + smallest span) hops.
    const std::uint32_t n = topo_->num_nodes();
    NodeId at = s;
    path.push_back(at);
    std::uint32_t d = t >= at ? t - at : n - (at - t);
    while (d > 0) {
      std::uint32_t step = 1;
      for (const std::uint32_t span : spans_) {
        if (span <= d) {
          step = span;
          break;
        }
      }
      at = static_cast<NodeId>((at + step) % n);
      path.push_back(at);
      d -= step;
    }
    return;
  }
  bfs_path(s, t, scratch, path);
}

void FlowRoutes::bfs_path(NodeId s, NodeId t, Scratch& scratch,
                          std::vector<NodeId>& path) const {
  const NodeId n = csr_->num_nodes();
  if (scratch.stamp_fwd.size() != n) {
    scratch.stamp_fwd.assign(n, 0);
    scratch.stamp_bwd.assign(n, 0);
    scratch.parent_fwd.assign(n, kInvalidNode);
    scratch.parent_bwd.assign(n, kInvalidNode);
    scratch.gen = 0;
  }
  const std::uint32_t gen = ++scratch.gen;

  // Bidirectional level-synchronous BFS. The two searches expand alternately
  // (smaller frontier first); after each expansion the lowest-id node seen by
  // both sides is the meeting point — a data-dependent tie-break, so the path
  // is identical for any thread count.
  std::vector<NodeId>& fwd = scratch.fwd;
  std::vector<NodeId>& bwd = scratch.bwd;
  fwd.assign(1, s);
  bwd.assign(1, t);
  scratch.stamp_fwd[s] = gen;
  scratch.parent_fwd[s] = kInvalidNode;
  scratch.stamp_bwd[t] = gen;
  scratch.parent_bwd[t] = kInvalidNode;

  NodeId meet = kInvalidNode;
  while (meet == kInvalidNode && (!fwd.empty() || !bwd.empty())) {
    const bool expand_fwd =
        !fwd.empty() && (bwd.empty() || fwd.size() <= bwd.size());
    std::vector<NodeId>& frontier = expand_fwd ? fwd : bwd;
    std::vector<std::uint32_t>& stamp = expand_fwd ? scratch.stamp_fwd : scratch.stamp_bwd;
    std::vector<NodeId>& parent = expand_fwd ? scratch.parent_fwd : scratch.parent_bwd;
    const std::vector<std::uint32_t>& other_stamp =
        expand_fwd ? scratch.stamp_bwd : scratch.stamp_fwd;

    scratch.next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : csr_->neighbors(u)) {
        if (stamp[v] == gen) continue;
        stamp[v] = gen;
        parent[v] = u;
        scratch.next.push_back(v);
        if (other_stamp[v] == gen && (meet == kInvalidNode || v < meet)) meet = v;
      }
    }
    frontier.swap(scratch.next);
  }
  DSN_REQUIRE(meet != kInvalidNode, "bfs route: graph is disconnected");

  // Stitch s .. meet (forward parents, reversed) and meet .. t (backward).
  path.clear();
  for (NodeId v = meet; v != kInvalidNode; v = scratch.parent_fwd[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  for (NodeId v = scratch.parent_bwd[meet]; v != kInvalidNode; v = scratch.parent_bwd[v])
    path.push_back(v);
}

}  // namespace dsn::flow
