// dsn-slint: deterministic — flow rates feed byte-identical replay gates;
// every reduction here is a min, an integer add, or a serial index-order sum,
// so the solution is bitwise identical for any shard or thread count.
//
// Max-min fair-share allocation by progressive water-filling. Given resource
// capacities (directed link halves plus host injection/ejection ports) and
// one resource list per flow, all unfrozen flows grow at the same rate until
// some resource saturates; flows crossing a saturated resource freeze at the
// current level and the rest keep growing. The result is the unique max-min
// fair allocation: every flow is bottlenecked at a saturated resource where
// it holds a maximal rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsn::flow {

/// Sentinel bottleneck for a flow the solver never froze (only possible on a
/// non-converged solve).
inline constexpr std::uint32_t kNoBottleneck = ~std::uint32_t{0};

struct FairShareResult {
  std::vector<double> rate;               ///< flits/cycle per flow
  std::vector<std::uint32_t> bottleneck;  ///< saturated resource that froze the flow
  std::uint32_t rounds = 0;               ///< water-filling rounds used
  bool converged = true;                  ///< false iff max_rounds was hit
};

/// Solve the max-min allocation. Flow f uses resources
/// `route_pool[route_begin[f] .. route_begin[f+1])`; `capacity[c]` > 0 is the
/// capacity of resource c in flits/cycle. Every flow must cross at least one
/// resource. `max_rounds` 0 uses the natural bound (one saturated resource
/// per round, so at most the number of used resources); a positive value is
/// an explicit ceiling below which the solve may report converged=false.
/// `shards` 0 auto-sizes from the global pool; the result is bitwise
/// independent of it.
FairShareResult max_min_fair_rates(const std::vector<double>& capacity,
                                   const std::vector<std::uint32_t>& route_pool,
                                   const std::vector<std::uint64_t>& route_begin,
                                   std::uint32_t max_rounds = 0,
                                   std::uint32_t shards = 0);

/// Verify the max-min invariant on a solution: (a) feasibility — no resource
/// is used beyond capacity * (1 + tol); (b) bottleneck — every flow's
/// bottleneck resource is saturated (usage >= capacity * (1 - tol)) and the
/// flow holds a maximal rate there (rate >= max rate across the resource
/// - tol). Returns human-readable violations (empty = invariant holds),
/// capped at `max_violations`. Used by the property tests and dsn-lint flow.
std::vector<std::string> check_max_min(const std::vector<double>& capacity,
                                       const std::vector<std::uint32_t>& route_pool,
                                       const std::vector<std::uint64_t>& route_begin,
                                       const FairShareResult& result,
                                       double tol = 1e-6,
                                       std::size_t max_violations = 8);

}  // namespace dsn::flow
