// dsn-slint: deterministic — flow routes feed byte-identical replay gates;
// BFS tie-breaks follow CSR insertion order, never an address or hash.
//
// Switch-level route provider for the flow tier. Unlike the analyzer (which
// sweeps all pairs and can afford O(n^2) up*/down* tables at small n), the
// flow tier routes one pair per flow at up to millions of switches, so every
// mode here is table-free or per-pair:
//
//   dsn / dsn-d / dor / greedy — the analyzer's own algebraic route bindings
//                                (analysis::make_route_function), table-free;
//   dln-jump                   — greedy clockwise distance-halving over the
//                                DLN's power-of-two spans (loop-free: the
//                                clockwise distance strictly decreases);
//   updown                     — the analyzer's up*/down* binding, only below
//                                `updown_max_n` switches;
//   bfs                        — per-pair bidirectional BFS shortest path on
//                                a CSR snapshot (random-regular and friends).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsn/analysis/route_analysis.hpp"
#include "dsn/graph/csr.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn::flow {

class FlowRoutes {
 public:
  /// Bind a route mode to `topo` (kept by reference; must outlive this).
  /// `csr` must be a snapshot of topo.graph. `updown_max_n` caps the switch
  /// count for which the O(n^2)-table up*/down* fallback may be built; larger
  /// irregular topologies fall back to per-pair BFS.
  FlowRoutes(const Topology& topo, const CsrView& csr, std::uint32_t updown_max_n = 4096);

  const std::string& mode() const { return mode_; }

  /// Per-caller scratch for the BFS mode (generation-stamped visit arrays,
  /// O(n) each); other modes ignore it. One per shard, never shared.
  struct Scratch {
    std::vector<std::uint32_t> stamp_fwd, stamp_bwd;
    std::vector<NodeId> parent_fwd, parent_bwd;
    std::vector<NodeId> fwd, bwd, next;
    std::uint32_t gen = 0;
  };

  /// Write the switch-level node path s .. t (both endpoints included) into
  /// `path`. s == t yields the single-node path {s}. Deterministic for any
  /// thread/shard count.
  void switch_path(NodeId s, NodeId t, Scratch& scratch, std::vector<NodeId>& path) const;

 private:
  void bfs_path(NodeId s, NodeId t, Scratch& scratch, std::vector<NodeId>& path) const;

  const Topology* topo_;
  const CsrView* csr_;
  std::string mode_;
  analyze::BoundRouting bound_;        ///< set unless mode is dln-jump or bfs
  std::vector<std::uint32_t> spans_;   ///< dln-jump: forward spans, descending
};

}  // namespace dsn::flow
