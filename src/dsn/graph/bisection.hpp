// Bisection analysis: estimate the bisection width (minimum number of links
// cut by a balanced node partition) of a topology. Exact bisection is
// NP-hard; we report the best of several natural cuts refined with
// Kernighan-Lin passes, which upper-bounds the true bisection width and is
// the standard comparison metric for interconnect proposals (e.g. Jellyfish).
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/graph/graph.hpp"

namespace dsn {

struct BisectionResult {
  std::uint64_t cut_links = 0;          ///< links crossing the partition
  std::vector<std::uint8_t> side;       ///< 0/1 per node
  /// Normalized: cut / (n/2) — links of bisection bandwidth per node.
  double per_node() const {
    const std::size_t n = side.size();
    return n == 0 ? 0.0 : static_cast<double>(cut_links) / (static_cast<double>(n) / 2.0);
  }
};

/// Number of links crossing a given 0/1 partition.
std::uint64_t count_cut_links(const Graph& g, const std::vector<std::uint8_t>& side);

/// Kernighan-Lin refinement: repeatedly swap the best (gain-wise) pair of
/// nodes across the cut until no improving pass remains. Keeps the partition
/// balanced. Returns the refined result.
BisectionResult kernighan_lin_refine(const Graph& g, std::vector<std::uint8_t> side,
                                     int max_passes = 8);

/// Estimate the bisection width: tries the id-split (first half vs second
/// half), an interleaved split, and `random_starts` random balanced splits,
/// refining each with Kernighan-Lin; returns the smallest cut found.
BisectionResult estimate_bisection(const Graph& g, std::uint64_t seed = 1,
                                   int random_starts = 4);

}  // namespace dsn
