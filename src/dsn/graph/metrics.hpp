// Hop-count graph metrics: BFS, all-pairs shortest path statistics, degree
// statistics. These drive the Figure 7/8 reproductions and the topology
// property tests.
//
// The all-pairs kernels (compute_path_stats, eccentricities, is_connected,
// clustering_coefficient) run on a CsrView snapshot driven by the 64-way
// bit-parallel MS-BFS (see msbfs.hpp); the Graph overloads build the snapshot
// internally. Callers holding several kernels' worth of work over the same
// graph should build one CsrView and use the CsrView overloads directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsn/graph/csr.hpp"
#include "dsn/graph/graph.hpp"

namespace dsn {

/// BFS hop distances from src to every node (kUnreachable when disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src);

/// BFS that additionally records one shortest-path predecessor per node.
struct BfsTree {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> parent;  // kInvalidNode for src/unreachable
};
BfsTree bfs_tree(const Graph& g, NodeId src);

/// Aggregate all-pairs shortest-path statistics computed by parallel BFS.
struct PathStats {
  bool connected = false;
  std::uint32_t diameter = 0;          ///< max over reachable pairs
  double avg_shortest_path = 0.0;      ///< mean hops over ordered reachable pairs, s != t
  std::vector<std::uint64_t> hop_histogram;  ///< index = hop count, value = #ordered pairs
};

/// Compute PathStats with bit-parallel multi-source BFS, 64 sources per
/// sweep, parallelized over sweeps with per-shard accumulators.
PathStats compute_path_stats(const Graph& g);
PathStats compute_path_stats(const CsrView& csr);

/// Sampled-source variant: the same sharded MS-BFS sweep restricted to an
/// explicit source set (any subset of [0, n), each source in [1, n] times).
/// Statistics cover ordered pairs (s, t) with s drawn from `sources` and
/// t != s; `connected` means every sampled source reached every other node.
/// With sources = [0, n) this is exactly the full all-pairs sweep (the full
/// overloads above delegate here). Deterministic for any thread count: shard
/// results are integer histograms merged in shard order.
PathStats compute_path_stats(const CsrView& csr, std::span<const NodeId> sources);

/// Eccentricity (max BFS distance) of every node; kUnreachable if the node
/// cannot reach some other node.
std::vector<std::uint32_t> eccentricities(const Graph& g);
std::vector<std::uint32_t> eccentricities(const CsrView& csr);

/// Degree distribution summary.
struct DegreeStats {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  std::vector<std::uint64_t> histogram;  ///< index = degree, value = #nodes
};
DegreeStats compute_degree_stats(const Graph& g);

/// True iff every node can reach every other node.
bool is_connected(const Graph& g);
bool is_connected(const CsrView& csr);

/// Average local clustering coefficient (Watts-Strogatz): for each node with
/// degree >= 2, the fraction of neighbor pairs that are themselves linked,
/// averaged over all such nodes. The classic "small-world" signature is high
/// clustering together with low average shortest path length. The CsrView
/// overload builds the snapshot's sorted neighbor sets on demand (hence the
/// non-const reference); pairs are counted by sorted-set intersection,
/// parallelized over nodes.
double clustering_coefficient(const Graph& g);
double clustering_coefficient(CsrView& csr);

}  // namespace dsn
