// dsn-slint: deterministic — estimates feed the byte-identical Pareto-front
// gates; sampling, re-sweep order and merges must be pure functions of
// (graph, config), never of thread count or timing.
//
// Incremental sampled path/load estimator for the shortcut-placement
// optimizer (dsn/opt). A SampledPathEstimator holds, for a fixed seeded
// sample of BFS sources, the exact per-source distance rows plus the
// per-link loads of each source's canonical shortest-path tree. After an
// edge swap it re-sweeps only the sources whose BFS trees can actually be
// touched by the mutated links — an exact criterion, not a heuristic. Write
// w for the endpoint farther from s and p for the other one:
//
//   * a removed link affects s iff it was the canonical parent edge of w
//     (p == min-id neighbor of w at distance d_s[w] - 1). A non-parent tight
//     link carries no tree load, and w keeps its distance through its
//     surviving parent, so every other node's distance survives too;
//   * an added link affects s iff |d_s[u] - d_s[v]| >= 2 (distances shrink),
//     or |delta| == 1 and p < canonical_parent(w) (the new tight link steals
//     w's min-id parent, shifting loads); |delta| == 0 links are never tight.
//
// The checks compose across a double swap because an unaffected source keeps
// both its distance row and its canonical parents through each individual
// edit. One caveat inherited from the min-(id, link) tie-break: the test
// assumes a mutated endpoint pair is not duplicated by a surviving parallel
// link (guaranteed under MutableShortcutSet, which rejects duplicates).
//
// Skipping unaffected sources is therefore exact: the incremental state is
// bit-identical to a fresh rebuild (test_opt_estimator.cpp pins this). When
// a swap affects more than EstimatorConfig::max_affected_fraction of the
// sample, the estimator falls back to one fresh sampled MS-BFS sweep
// (cheaper than many single-source re-sweeps, 64 lanes per pass).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dsn/common/types.hpp"
#include "dsn/graph/csr.hpp"

namespace dsn {

struct EstimatorConfig {
  /// BFS sources sampled without replacement. 0 = auto: all n sources when
  /// n <= 1024 (the estimate is then exact), else 128. Memory is O(S * n).
  std::uint32_t sample_sources = 0;
  /// Seed for the source sample (independent of the annealing seed).
  std::uint64_t seed = 0x5eed;
  /// Fall back to a fresh full sampled sweep when a swap affects more than
  /// this fraction of the sample ("drift"). Break-even: a full sweep costs
  /// ~S tree-load accumulations plus ceil(S/64) MS-BFS batches, an affected
  /// source costs one BFS plus two tree accumulations (~3 O(n+m) passes), so
  /// incremental wins below roughly S/3. Long shortcuts carry most trees'
  /// load, so global swaps essentially always drift; locality-biased moves
  /// (see OptimizerConfig::local_bias) land below the threshold.
  double max_affected_fraction = 0.35;
};

/// Aggregate estimate over the sampled sources. With sample_sources == n the
/// ASPL equals compute_path_stats().avg_shortest_path exactly.
struct EstimateView {
  double aspl = 0.0;
  std::uint64_t sum_hops = 0;         ///< over ordered (sampled s, t != s) pairs
  std::uint64_t reachable_pairs = 0;  ///< ditto
  bool sample_connected = true;       ///< every sampled source reached all others
  /// Max per-link load over the sampled sources' canonical shortest-path
  /// trees, each destination weighing 1 (tree loads, not routing-function
  /// loads: deterministic min-id parents, no path splitting).
  std::uint64_t max_link_load = 0;
  /// max_link_load scaled to all n sources and normalized per ordered pair:
  /// max_link_load * n / (S * (n - 1)).
  double max_normalized_load = 0.0;
  double throughput_bound = 0.0;  ///< 1 / max_normalized_load
};

/// Seeded sample of `count` distinct sources from [0, n), ascending.
/// count >= n returns all of [0, n).
std::vector<NodeId> sample_sources(NodeId n, std::uint32_t count, std::uint64_t seed);

/// Scratch for accumulate_tree_loads (reused across calls).
struct TreeLoadScratch {
  std::vector<NodeId> order;           // nodes by descending distance
  std::vector<std::uint64_t> weight;   // subtree destination counts
  std::vector<std::size_t> bucket;     // counting-sort offsets by distance
};

/// Add (sign = +1) or subtract (sign = -1) the per-link loads of the
/// canonical shortest-path tree rooted at the unique dist-0 node: every node
/// v with dist[v] != kUnreachable routes to the root through its canonical
/// parent — the minimum-id neighbor u with dist[u] == dist[v] - 1 (ties on
/// parallel links broken by minimum link id). link_loads is indexed by the
/// CsrView's link ids. O(n + m).
void accumulate_tree_loads(const CsrView& g, std::span<const std::uint32_t> dist,
                           std::int64_t sign, std::span<std::int64_t> link_loads,
                           TreeLoadScratch& scratch);

/// Per-link canonical-tree loads summed over `sources` (each source's tree
/// via accumulate_tree_loads). Sharded 64-lane MS-BFS under the global thread
/// pool; per-shard integer accumulators merged in shard order, so the result
/// is identical for any thread count. Indexed by the CsrView's link ids.
std::vector<std::int64_t> compute_tree_loads(const CsrView& csr,
                                             std::span<const NodeId> sources);

class SampledPathEstimator {
 public:
  /// Full sampled sweep of `csr` (the committed graph). Later candidate
  /// graphs must keep the same node count, link count and link-id layout.
  SampledPathEstimator(const CsrView& csr, const EstimatorConfig& cfg);

  const std::vector<NodeId>& sources() const { return sources_; }
  const EstimateView& current() const { return current_; }
  const std::vector<std::int64_t>& link_loads() const { return loads_; }
  std::span<const std::uint32_t> distance_row(std::size_t source_index) const;

  /// Stage 1 of a candidate evaluation: classify which sampled sources the
  /// swap affects, from the stored distance rows plus O(degree) canonical-
  /// parent scans of `cur`, the committed graph (no candidate CSR needed —
  /// callers can skip the snapshot build when this returns 0).
  /// `removed`/`added` are the endpoint pairs leaving/entering the graph.
  std::size_t count_affected(const CsrView& cur,
                             std::span<const std::pair<NodeId, NodeId>> removed,
                             std::span<const std::pair<NodeId, NodeId>> added);

  /// Stage 2: evaluate the candidate. `cur` is the committed graph the
  /// estimator state was built on, `next` the candidate (same link ids).
  /// Uses the affected set from the preceding count_affected call. The
  /// result is held pending until commit() or discard().
  const EstimateView& evaluate(const CsrView& cur, const CsrView& next);

  /// Adopt the pending candidate state (the candidate graph is now the
  /// committed graph) / drop it (the swap was rejected and undone).
  void commit();
  void discard();

  std::size_t last_affected() const { return affected_.size(); }
  std::uint64_t resweeps() const { return resweeps_; }
  std::uint64_t full_sweeps() const { return full_sweeps_; }

 private:
  enum class Pending : std::uint8_t { kNone, kClean, kIncremental, kFull };

  void full_sweep(const CsrView& csr, std::vector<std::uint32_t>& rows,
                  std::vector<std::uint64_t>& sums, std::vector<std::uint32_t>& reached,
                  std::vector<std::int64_t>& loads);
  EstimateView make_view(std::uint64_t sum, std::uint64_t reachable,
                         std::uint64_t max_load) const;
  void refresh_current();

  EstimatorConfig cfg_;
  NodeId n_ = 0;
  std::size_t num_links_ = 0;

  std::vector<NodeId> sources_;
  std::vector<std::uint32_t> rows_;       // sources_.size() x n_, row-major
  std::vector<std::uint64_t> src_sum_;    // per-source sum of hops
  std::vector<std::uint32_t> src_reached_;
  std::vector<std::int64_t> loads_;       // per-link tree loads, committed
  EstimateView current_;

  Pending pending_ = Pending::kNone;
  std::vector<std::uint32_t> affected_;        // source indices, ascending
  std::vector<std::uint32_t> pending_rows_;    // affected x n_ (or full)
  std::vector<std::uint64_t> pending_sum_;
  std::vector<std::uint32_t> pending_reached_;
  std::vector<std::int64_t> delta_;            // per-link load delta (incremental)
  std::vector<std::int64_t> full_loads_;       // full-fallback loads
  EstimateView pending_view_;

  std::uint64_t resweeps_ = 0;
  std::uint64_t full_sweeps_ = 0;
};

}  // namespace dsn
