// dsn-slint: deterministic — estimates feed the byte-identical Pareto-front
// gates; sampling, re-sweep order and merges must be pure functions of
// (graph, config), never of thread count or timing.
#include "dsn/graph/estimator.hpp"

#include <algorithm>
#include <numeric>

#include "dsn/common/error.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/graph/msbfs.hpp"

namespace dsn {

std::vector<NodeId> sample_sources(NodeId n, std::uint32_t count, std::uint64_t seed) {
  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), NodeId{0});
  if (count >= n) return all;
  // Partial Fisher-Yates: the first `count` entries are a uniform sample
  // without replacement; sorting makes the sweep order id-ascending.
  Rng rng(seed);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto j = i + static_cast<NodeId>(rng.next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

void accumulate_tree_loads(const CsrView& g, std::span<const std::uint32_t> dist,
                           std::int64_t sign, std::span<std::int64_t> link_loads,
                           TreeLoadScratch& scratch) {
  const NodeId n = g.num_nodes();
  DSN_REQUIRE(dist.size() == n, "distance row size mismatch");
  DSN_REQUIRE(link_loads.size() == g.num_arcs() / 2, "load vector size mismatch");

  // Counting sort of the reachable non-root nodes by distance: weights flow
  // strictly from larger to smaller distance, so any order within one level
  // is correct; bucketing by (distance, node id) keeps it canonical.
  std::uint32_t maxd = 0;
  std::size_t cnt = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = dist[v];
    if (d == 0 || d == kUnreachable) continue;
    maxd = std::max(maxd, d);
    ++cnt;
  }
  if (cnt == 0) return;
  scratch.bucket.assign(static_cast<std::size_t>(maxd) + 2, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = dist[v];
    if (d == 0 || d == kUnreachable) continue;
    ++scratch.bucket[d + 1];
  }
  for (std::size_t i = 1; i <= maxd; ++i) scratch.bucket[i + 1] += scratch.bucket[i];
  scratch.order.resize(cnt);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = dist[v];
    if (d == 0 || d == kUnreachable) continue;
    scratch.order[scratch.bucket[d]++] = v;
  }

  scratch.weight.assign(n, 1);
  for (std::size_t idx = cnt; idx-- > 0;) {
    const NodeId v = scratch.order[idx];
    const std::uint32_t d = dist[v];
    const auto nbrs = g.neighbors(v);
    const auto lnks = g.links(v);
    NodeId best_u = kInvalidNode;
    LinkId best_link = 0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const NodeId u = nbrs[k];
      if (dist[u] + 1 != d) continue;  // kUnreachable + 1 wraps to 0 != d (d >= 1)
      const LinkId l = lnks[k];
      if (best_u == kInvalidNode || u < best_u || (u == best_u && l < best_link)) {
        best_u = u;
        best_link = l;
      }
    }
    DSN_ASSERT(best_u != kInvalidNode, "reachable node must have a tight parent");
    link_loads[best_link] += sign * static_cast<std::int64_t>(scratch.weight[v]);
    scratch.weight[best_u] += scratch.weight[v];
  }
}

std::vector<std::int64_t> compute_tree_loads(const CsrView& csr,
                                             std::span<const NodeId> sources) {
  const NodeId n = csr.num_nodes();
  const std::size_t num_links = csr.num_arcs() / 2;
  std::vector<std::int64_t> loads(num_links, 0);
  if (n == 0 || sources.empty()) return loads;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t batches = (sources.size() + kMsBfsBatch - 1) / kMsBfsBatch;
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(batches, 4 * pool.size()));
  std::vector<std::vector<std::int64_t>> shard_loads(shards);

  pool.parallel_for(0, shards, [&](std::size_t k) {
    std::vector<std::int64_t>& sl = shard_loads[k];
    sl.assign(num_links, 0);
    MsBfsScratch scratch;
    TreeLoadScratch tls;
    std::vector<std::uint32_t> batch_dist(static_cast<std::size_t>(n) * kMsBfsBatch);
    std::vector<std::uint32_t> row(n);
    const std::size_t begin = k * batches / shards;
    const std::size_t end = (k + 1) * batches / shards;
    for (std::size_t b = begin; b < end; ++b) {
      const std::size_t lo = b * kMsBfsBatch;
      const std::size_t lanes =
          std::min<std::size_t>(sources.size() - lo, kMsBfsBatch);
      msbfs_batch(csr, sources.subspan(lo, lanes), batch_dist.data(), scratch);
      for (std::size_t i = 0; i < lanes; ++i) {
        for (NodeId v = 0; v < n; ++v)
          row[v] = batch_dist[static_cast<std::size_t>(v) * kMsBfsBatch + i];
        accumulate_tree_loads(csr, row, +1, sl, tls);
      }
    }
  });

  for (const std::vector<std::int64_t>& sl : shard_loads)
    for (std::size_t l = 0; l < num_links; ++l) loads[l] += sl[l];
  return loads;
}

SampledPathEstimator::SampledPathEstimator(const CsrView& csr, const EstimatorConfig& cfg)
    : cfg_(cfg), n_(csr.num_nodes()), num_links_(csr.num_arcs() / 2) {
  DSN_REQUIRE(n_ > 1, "estimator needs at least two nodes");
  std::uint32_t count = cfg_.sample_sources;
  if (count == 0) count = n_ <= 1024 ? n_ : 128;
  count = static_cast<std::uint32_t>(std::min<std::uint64_t>(count, n_));
  sources_ = sample_sources(n_, count, cfg_.seed);
  full_sweep(csr, rows_, src_sum_, src_reached_, loads_);
  refresh_current();
  delta_.assign(num_links_, 0);
}

std::span<const std::uint32_t> SampledPathEstimator::distance_row(
    std::size_t source_index) const {
  DSN_REQUIRE(source_index < sources_.size(), "source index out of range");
  return {rows_.data() + source_index * n_, n_};
}

void SampledPathEstimator::full_sweep(const CsrView& csr, std::vector<std::uint32_t>& rows,
                                      std::vector<std::uint64_t>& sums,
                                      std::vector<std::uint32_t>& reached,
                                      std::vector<std::int64_t>& loads) {
  const std::size_t num_sources = sources_.size();
  rows.resize(num_sources * n_);
  sums.assign(num_sources, 0);
  reached.assign(num_sources, 0);
  loads.assign(num_links_, 0);

  ThreadPool& pool = ThreadPool::global();
  const std::size_t batches = (num_sources + kMsBfsBatch - 1) / kMsBfsBatch;
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(batches, 4 * pool.size()));
  // Per-shard load accumulators, merged serially in shard order below. The
  // merge is an integer sum, so the result is identical for any shard count.
  std::vector<std::vector<std::int64_t>> shard_loads(shards);

  pool.parallel_for(0, shards, [&](std::size_t k) {
    std::vector<std::int64_t>& sl = shard_loads[k];
    sl.assign(num_links_, 0);
    MsBfsScratch scratch;
    TreeLoadScratch tls;
    std::vector<std::uint32_t> batch_dist(static_cast<std::size_t>(n_) * kMsBfsBatch);
    const std::size_t begin = k * batches / shards;
    const std::size_t end = (k + 1) * batches / shards;
    for (std::size_t b = begin; b < end; ++b) {
      const std::size_t lo = b * kMsBfsBatch;
      const std::size_t lanes =
          std::min<std::size_t>(num_sources - lo, kMsBfsBatch);
      msbfs_batch(csr, std::span<const NodeId>(sources_).subspan(lo, lanes),
                  batch_dist.data(), scratch);
      for (std::size_t i = 0; i < lanes; ++i) {
        const std::size_t si = lo + i;
        std::uint32_t* row = rows.data() + si * n_;
        std::uint64_t sum = 0;
        std::uint32_t rc = 0;
        for (NodeId v = 0; v < n_; ++v) {
          const std::uint32_t d = batch_dist[static_cast<std::size_t>(v) * kMsBfsBatch + i];
          row[v] = d;
          if (d != 0 && d != kUnreachable) {
            sum += d;
            ++rc;
          }
        }
        sums[si] = sum;
        reached[si] = rc;
        accumulate_tree_loads(csr, {row, n_}, +1, sl, tls);
      }
    }
  });

  for (const std::vector<std::int64_t>& sl : shard_loads)
    for (std::size_t l = 0; l < num_links_; ++l) loads[l] += sl[l];
}

EstimateView SampledPathEstimator::make_view(std::uint64_t sum, std::uint64_t reachable,
                                             std::uint64_t max_load) const {
  EstimateView v;
  const auto num_sources = static_cast<std::uint64_t>(sources_.size());
  v.sum_hops = sum;
  v.reachable_pairs = reachable;
  v.aspl = reachable == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(reachable);
  v.sample_connected = reachable == num_sources * (n_ - 1);
  v.max_link_load = max_load;
  if (max_load > 0) {
    v.max_normalized_load = static_cast<double>(max_load) * static_cast<double>(n_) /
                            (static_cast<double>(num_sources) * static_cast<double>(n_ - 1));
    v.throughput_bound = 1.0 / v.max_normalized_load;
  }
  return v;
}

void SampledPathEstimator::refresh_current() {
  std::uint64_t sum = 0;
  std::uint64_t reach = 0;
  for (std::size_t k = 0; k < sources_.size(); ++k) {
    sum += src_sum_[k];
    reach += src_reached_[k];
  }
  std::uint64_t maxl = 0;
  for (const std::int64_t l : loads_)
    maxl = std::max(maxl, static_cast<std::uint64_t>(std::max<std::int64_t>(l, 0)));
  current_ = make_view(sum, reach, maxl);
}

namespace {

/// Canonical tree parent of v under this distance row: the minimum-id
/// neighbor at distance dist[v] - 1 (kInvalidNode when v is the root or
/// unreachable). Matches accumulate_tree_loads' parent rule at node level.
NodeId canonical_parent(const CsrView& g, const std::uint32_t* dist, NodeId v) {
  const std::uint32_t d = dist[v];
  NodeId best = kInvalidNode;
  for (const NodeId u : g.neighbors(v)) {
    if (dist[u] + 1 == d && u < best) best = u;
  }
  return best;
}

}  // namespace

std::size_t SampledPathEstimator::count_affected(
    const CsrView& cur, std::span<const std::pair<NodeId, NodeId>> removed,
    std::span<const std::pair<NodeId, NodeId>> added) {
  DSN_REQUIRE(pending_ == Pending::kNone, "previous candidate not committed/discarded");
  affected_.clear();
  const std::size_t num_sources = sources_.size();
  for (std::size_t k = 0; k < num_sources; ++k) {
    const std::uint32_t* d = rows_.data() + k * n_;
    bool aff = false;
    for (const auto& [u, v] : removed) {
      // An existing link has |delta| <= 1 (and never infinite-vs-finite).
      // Non-tight links carry no tree load; a tight link matters only when
      // it is the farther endpoint's canonical parent edge.
      if (d[u] == d[v]) continue;
      const NodeId parent = d[u] < d[v] ? u : v;
      const NodeId child = d[u] < d[v] ? v : u;
      if (canonical_parent(cur, d, child) == parent) {
        aff = true;
        break;
      }
    }
    if (!aff) {
      for (const auto& [u, v] : added) {
        const std::uint32_t du = d[u];
        const std::uint32_t dv = d[v];
        if (du == dv) continue;  // never tight, nothing moves
        const NodeId lo = du < dv ? u : v;
        const NodeId hi = du < dv ? v : u;
        const std::uint32_t diff = d[hi] - d[lo];  // well-defined: d[hi] > d[lo]
        // diff >= 2 (or reaching a previously unreachable side) shortens
        // distances; diff == 1 only matters when the new tight link steals
        // hi's min-id canonical parent.
        if (diff != 1 || lo < canonical_parent(cur, d, hi)) {
          aff = true;
          break;
        }
      }
    }
    if (aff) affected_.push_back(static_cast<std::uint32_t>(k));
  }
  pending_ = Pending::kClean;
  return affected_.size();
}

const EstimateView& SampledPathEstimator::evaluate(const CsrView& cur, const CsrView& next) {
  DSN_REQUIRE(pending_ == Pending::kClean, "evaluate needs a preceding count_affected");
  DSN_REQUIRE(next.num_nodes() == n_ && next.num_arcs() / 2 == num_links_,
              "candidate graph shape mismatch");
  const std::size_t num_sources = sources_.size();
  if (affected_.empty()) {
    pending_view_ = current_;
    return pending_view_;
  }

  if (static_cast<double>(affected_.size()) >
      cfg_.max_affected_fraction * static_cast<double>(num_sources)) {
    // Drift fallback: one fresh 64-lane sampled sweep beats many
    // single-source re-sweeps.
    ++full_sweeps_;
    full_sweep(next, pending_rows_, pending_sum_, pending_reached_, full_loads_);
    std::uint64_t sum = 0;
    std::uint64_t reach = 0;
    for (std::size_t k = 0; k < num_sources; ++k) {
      sum += pending_sum_[k];
      reach += pending_reached_[k];
    }
    std::uint64_t maxl = 0;
    for (const std::int64_t l : full_loads_)
      maxl = std::max(maxl, static_cast<std::uint64_t>(std::max<std::int64_t>(l, 0)));
    pending_view_ = make_view(sum, reach, maxl);
    pending_ = Pending::kFull;
    return pending_view_;
  }

  const std::size_t num_affected = affected_.size();
  resweeps_ += num_affected;
  pending_rows_.resize(num_affected * n_);
  pending_sum_.resize(num_affected);
  pending_reached_.resize(num_affected);
  // Re-sweep affected sources in parallel; each writes a disjoint row, and
  // BFS itself is sequential per source, so the result is thread-invariant.
  ThreadPool::global().parallel_for(0, num_affected, [&](std::size_t a) {
    const NodeId src = sources_[affected_[a]];
    std::uint32_t* row = pending_rows_.data() + a * n_;
    MsBfsScratch scratch;
    csr_bfs_distances(next, src, row, 1, scratch);
    std::uint64_t sum = 0;
    std::uint32_t rc = 0;
    for (NodeId v = 0; v < n_; ++v) {
      const std::uint32_t d = row[v];
      if (d != 0 && d != kUnreachable) {
        sum += d;
        ++rc;
      }
    }
    pending_sum_[a] = sum;
    pending_reached_[a] = rc;
  });

  std::fill(delta_.begin(), delta_.end(), 0);
  TreeLoadScratch tls;
  std::int64_t dsum = 0;
  std::int64_t dreach = 0;
  for (std::size_t a = 0; a < num_affected; ++a) {
    const std::size_t k = affected_[a];
    accumulate_tree_loads(cur, {rows_.data() + k * n_, n_}, -1, delta_, tls);
    accumulate_tree_loads(next, {pending_rows_.data() + a * n_, n_}, +1, delta_, tls);
    dsum += static_cast<std::int64_t>(pending_sum_[a]) -
            static_cast<std::int64_t>(src_sum_[k]);
    dreach += static_cast<std::int64_t>(pending_reached_[a]) -
              static_cast<std::int64_t>(src_reached_[k]);
  }
  const auto sum = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(current_.sum_hops) + dsum);
  const auto reach = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(current_.reachable_pairs) + dreach);
  std::uint64_t maxl = 0;
  for (std::size_t l = 0; l < num_links_; ++l) {
    const std::int64_t x = loads_[l] + delta_[l];
    DSN_ASSERT(x >= 0, "tree loads cannot go negative");
    maxl = std::max(maxl, static_cast<std::uint64_t>(x));
  }
  pending_view_ = make_view(sum, reach, maxl);
  pending_ = Pending::kIncremental;
  return pending_view_;
}

void SampledPathEstimator::commit() {
  DSN_REQUIRE(pending_ != Pending::kNone, "no pending candidate to commit");
  switch (pending_) {
    case Pending::kIncremental:
      for (std::size_t a = 0; a < affected_.size(); ++a) {
        const std::size_t k = affected_[a];
        std::copy_n(pending_rows_.data() + a * n_, n_, rows_.data() + k * n_);
        src_sum_[k] = pending_sum_[a];
        src_reached_[k] = pending_reached_[a];
      }
      for (std::size_t l = 0; l < num_links_; ++l) loads_[l] += delta_[l];
      current_ = pending_view_;
      break;
    case Pending::kFull:
      rows_.swap(pending_rows_);
      src_sum_.swap(pending_sum_);
      src_reached_.swap(pending_reached_);
      loads_.swap(full_loads_);
      current_ = pending_view_;
      break;
    case Pending::kClean:  // swap did not touch any sampled tree
    case Pending::kNone:
      break;
  }
  pending_ = Pending::kNone;
}

void SampledPathEstimator::discard() {
  DSN_REQUIRE(pending_ != Pending::kNone, "no pending candidate to discard");
  pending_ = Pending::kNone;
}

}  // namespace dsn
