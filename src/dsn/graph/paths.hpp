// Path diversity analysis: Yen's k-shortest loopless paths (hop-count metric)
// and pairwise edge connectivity (maximum number of edge-disjoint paths, via
// unit-capacity max-flow). Interconnects with higher path diversity tolerate
// faults better and spread adaptive traffic more evenly — a key argument in
// the random-topology literature the paper engages with.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/graph/graph.hpp"

namespace dsn {

/// Shortest path (node sequence) from s to t by BFS; empty if unreachable.
/// Deterministic: prefers lower node ids among equal-length parents.
std::vector<NodeId> shortest_path(const Graph& g, NodeId s, NodeId t);

/// Yen's algorithm: up to k loopless shortest paths in nondecreasing length.
/// Deterministic tie-breaking. Returns fewer than k when the graph runs out
/// of distinct loopless paths.
std::vector<std::vector<NodeId>> yen_k_shortest_paths(const Graph& g, NodeId s,
                                                      NodeId t, std::size_t k);

/// Maximum number of edge-disjoint s-t paths (pairwise edge connectivity),
/// computed with Edmonds-Karp on unit capacities. Parallel physical links
/// count separately.
std::uint32_t edge_disjoint_paths(const Graph& g, NodeId s, NodeId t);

/// Global edge connectivity: min over t != 0 of edge_disjoint_paths(0, t).
std::uint32_t edge_connectivity(const Graph& g);

}  // namespace dsn
