#include "dsn/graph/bisection.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "dsn/common/rng.hpp"
#include "dsn/graph/csr.hpp"

namespace dsn {

std::uint64_t count_cut_links(const Graph& g, const std::vector<std::uint8_t>& side) {
  DSN_REQUIRE(side.size() == g.num_nodes(), "partition size mismatch");
  std::uint64_t cut = 0;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto [u, v] = g.link_endpoints(l);
    if (side[u] != side[v]) ++cut;
  }
  return cut;
}

namespace {

/// External minus internal degree of node u under the partition. Walks the
/// CSR snapshot: gain recomputation is the inner loop of every KL pass.
std::int64_t gain_of(const CsrView& csr, const std::vector<std::uint8_t>& side, NodeId u) {
  std::int64_t gain = 0;
  for (const NodeId v : csr.neighbors(u)) {
    gain += side[v] != side[u] ? 1 : -1;
  }
  return gain;
}

}  // namespace

BisectionResult kernighan_lin_refine(const Graph& g, std::vector<std::uint8_t> side,
                                     int max_passes) {
  const NodeId n = g.num_nodes();
  DSN_REQUIRE(side.size() == n, "partition size mismatch");
  const CsrView csr(g);  // one snapshot serves every pass

  for (int pass = 0; pass < max_passes; ++pass) {
    // One KL pass: greedily swap the best unlocked pair; track the prefix of
    // swaps with the best cumulative gain and commit only that prefix.
    std::vector<std::uint8_t> locked(n, 0);
    std::vector<std::pair<NodeId, NodeId>> swaps;
    std::vector<std::int64_t> cumulative;
    std::int64_t running = 0;

    std::vector<std::int64_t> gain(n);
    for (NodeId u = 0; u < n; ++u) gain[u] = gain_of(csr, side, u);

    const std::size_t max_swaps = n / 2;
    for (std::size_t s = 0; s < max_swaps; ++s) {
      // Best unlocked node on each side by gain.
      NodeId best_a = kInvalidNode, best_b = kInvalidNode;
      for (NodeId u = 0; u < n; ++u) {
        if (locked[u]) continue;
        if (side[u] == 0) {
          if (best_a == kInvalidNode || gain[u] > gain[best_a]) best_a = u;
        } else {
          if (best_b == kInvalidNode || gain[u] > gain[best_b]) best_b = u;
        }
      }
      if (best_a == kInvalidNode || best_b == kInvalidNode) break;
      // Swap gain = g(a) + g(b) - 2 * w(a, b).
      std::int64_t w_ab = 0;
      for (const NodeId v : csr.neighbors(best_a)) {
        if (v == best_b) ++w_ab;
      }
      const std::int64_t swap_gain = gain[best_a] + gain[best_b] - 2 * w_ab;

      // Apply tentatively.
      side[best_a] ^= 1;
      side[best_b] ^= 1;
      locked[best_a] = locked[best_b] = 1;
      running += swap_gain;
      swaps.emplace_back(best_a, best_b);
      cumulative.push_back(running);

      // Update gains of unlocked neighbors (and the swapped pair, which is
      // locked anyway).
      for (const NodeId moved : {best_a, best_b}) {
        for (const NodeId v : csr.neighbors(moved)) {
          if (!locked[v]) gain[v] = gain_of(csr, side, v);
        }
      }
    }

    // Find the best prefix.
    std::int64_t best_gain = 0;
    std::size_t best_len = 0;
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (cumulative[i] > best_gain) {
        best_gain = cumulative[i];
        best_len = i + 1;
      }
    }
    // Roll back swaps beyond the best prefix.
    for (std::size_t i = swaps.size(); i > best_len; --i) {
      side[swaps[i - 1].first] ^= 1;
      side[swaps[i - 1].second] ^= 1;
    }
    if (best_gain <= 0) break;  // converged
  }

  BisectionResult result;
  result.side = std::move(side);
  result.cut_links = count_cut_links(g, result.side);
  return result;
}

BisectionResult estimate_bisection(const Graph& g, std::uint64_t seed, int random_starts) {
  const NodeId n = g.num_nodes();
  DSN_REQUIRE(n >= 2 && n % 2 == 0, "bisection needs an even node count >= 2");

  BisectionResult best;
  best.cut_links = std::numeric_limits<std::uint64_t>::max();

  const auto consider = [&](std::vector<std::uint8_t> side) {
    BisectionResult r = kernighan_lin_refine(g, std::move(side));
    if (r.cut_links < best.cut_links) best = std::move(r);
  };

  // Id split: [0, n/2) vs [n/2, n) — natural for ring-based topologies.
  {
    std::vector<std::uint8_t> side(n, 0);
    for (NodeId u = n / 2; u < n; ++u) side[u] = 1;
    consider(std::move(side));
  }
  // Interleaved split.
  {
    std::vector<std::uint8_t> side(n, 0);
    for (NodeId u = 0; u < n; ++u) side[u] = static_cast<std::uint8_t>(u % 2);
    consider(std::move(side));
  }
  // Random balanced splits.
  Rng rng(seed);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (int r = 0; r < random_starts; ++r) {
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    std::vector<std::uint8_t> side(n, 0);
    for (NodeId i = n / 2; i < n; ++i) side[perm[i]] = 1;
    consider(std::move(side));
  }
  return best;
}

}  // namespace dsn
