#include "dsn/graph/paths.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "dsn/graph/metrics.hpp"

namespace dsn {

namespace {

/// BFS shortest path avoiding banned links and banned nodes. Deterministic:
/// neighbors are scanned in adjacency order and the first parent wins.
std::vector<NodeId> bfs_path_restricted(const Graph& g, NodeId s, NodeId t,
                                        const std::set<LinkId>& banned_links,
                                        const std::vector<std::uint8_t>& banned_nodes) {
  if (s == t) return {s};
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::vector<std::uint8_t> seen(g.num_nodes(), 0);
  std::deque<NodeId> queue{s};
  seen[s] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const AdjHalf& h : g.neighbors(u)) {
      if (seen[h.to] || banned_nodes[h.to] || banned_links.contains(h.link)) continue;
      seen[h.to] = 1;
      parent[h.to] = u;
      if (h.to == t) {
        std::vector<NodeId> path{t};
        for (NodeId v = t; v != s; v = parent[v]) path.push_back(parent[v]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(h.to);
    }
  }
  return {};
}

}  // namespace

std::vector<NodeId> shortest_path(const Graph& g, NodeId s, NodeId t) {
  DSN_REQUIRE(s < g.num_nodes() && t < g.num_nodes(), "node id out of range");
  return bfs_path_restricted(g, s, t, {}, std::vector<std::uint8_t>(g.num_nodes(), 0));
}

std::vector<std::vector<NodeId>> yen_k_shortest_paths(const Graph& g, NodeId s,
                                                      NodeId t, std::size_t k) {
  DSN_REQUIRE(s < g.num_nodes() && t < g.num_nodes(), "node id out of range");
  DSN_REQUIRE(s != t, "k-shortest paths needs distinct endpoints");
  std::vector<std::vector<NodeId>> result;
  const auto first = shortest_path(g, s, t);
  if (first.empty() || k == 0) return result;
  result.push_back(first);

  // Candidate pool, ordered by (length, lexicographic) for determinism.
  std::set<std::vector<NodeId>, bool (*)(const std::vector<NodeId>&,
                                         const std::vector<NodeId>&)>
      candidates(+[](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
        if (a.size() != b.size()) return a.size() < b.size();
        return a < b;
      });

  while (result.size() < k) {
    const std::vector<NodeId>& prev = result.back();
    // Each prefix of the previous path spawns a deviation.
    for (std::size_t spur = 0; spur + 1 < prev.size(); ++spur) {
      const NodeId spur_node = prev[spur];
      std::vector<NodeId> root(prev.begin(), prev.begin() + static_cast<std::ptrdiff_t>(spur + 1));

      std::set<LinkId> banned_links;
      for (const auto& p : result) {
        if (p.size() > spur &&
            std::equal(root.begin(), root.end(), p.begin(), p.begin() + static_cast<std::ptrdiff_t>(spur + 1))) {
          // Ban every parallel link between the shared prefix end and the
          // next node of this established path.
          for (const AdjHalf& h : g.neighbors(spur_node)) {
            if (h.to == p[spur + 1]) banned_links.insert(h.link);
          }
        }
      }
      std::vector<std::uint8_t> banned_nodes(g.num_nodes(), 0);
      for (std::size_t i = 0; i < spur; ++i) banned_nodes[prev[i]] = 1;

      const auto spur_path =
          bfs_path_restricted(g, spur_node, t, banned_links, banned_nodes);
      if (spur_path.empty()) continue;
      std::vector<NodeId> total = root;
      total.insert(total.end(), spur_path.begin() + 1, spur_path.end());
      if (std::find_if(result.begin(), result.end(),
                       [&](const auto& p) { return p == total; }) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

namespace {

/// Reusable working set for the unit-capacity Edmonds-Karp runs: one residual
/// array plus BFS buffers, reset (not reallocated) per (s, t) pair so the
/// all-targets sweep of edge_connectivity stops churning the allocator.
struct FlowScratch {
  std::vector<std::uint8_t> capacity;    // residual[2*link + dir]
  std::vector<std::uint32_t> parent_arc;
  std::vector<std::uint8_t> seen;
  std::vector<NodeId> queue;
};

/// Max edge-disjoint s-t paths, stopping early once `cap` paths are found.
/// A capped run answers "is the flow >= cap" exactly and min(cap, flow)
/// otherwise — all edge_connectivity needs, since values above its running
/// minimum cannot change the result.
std::uint32_t edge_disjoint_paths_capped(const Graph& g, NodeId s, NodeId t,
                                         std::uint32_t cap, FlowScratch& scratch) {
  // Edmonds-Karp with unit capacities: each undirected link becomes a pair
  // of directed arcs with capacity 1 each; residual flips used arcs.
  scratch.capacity.assign(g.num_links() * 2, 1);
  std::uint32_t flow = 0;

  while (flow < cap) {
    // BFS for an augmenting path over arcs with residual capacity.
    scratch.parent_arc.assign(g.num_nodes(), kInvalidNode);
    scratch.seen.assign(g.num_nodes(), 0);
    scratch.queue.clear();
    scratch.queue.push_back(s);
    scratch.seen[s] = 1;
    bool found = false;
    for (std::size_t head = 0; head < scratch.queue.size() && !found; ++head) {
      const NodeId u = scratch.queue[head];
      for (const AdjHalf& h : g.neighbors(u)) {
        const auto [a, b] = g.link_endpoints(h.link);
        const std::uint32_t arc = 2 * h.link + (u == a ? 0u : 1u);
        if (!scratch.capacity[arc] || scratch.seen[h.to]) continue;
        scratch.seen[h.to] = 1;
        scratch.parent_arc[h.to] = arc;
        if (h.to == t) {
          found = true;
          break;
        }
        scratch.queue.push_back(h.to);
      }
    }
    if (!found) break;
    // Augment along the path.
    NodeId v = t;
    while (v != s) {
      const std::uint32_t arc = scratch.parent_arc[v];
      scratch.capacity[arc] = 0;
      scratch.capacity[arc ^ 1u] = 1;  // residual in the opposite direction
      const auto [a, b] = g.link_endpoints(static_cast<LinkId>(arc / 2));
      v = (arc % 2 == 0) ? a : b;
    }
    ++flow;
  }
  return flow;
}

}  // namespace

std::uint32_t edge_disjoint_paths(const Graph& g, NodeId s, NodeId t) {
  DSN_REQUIRE(s < g.num_nodes() && t < g.num_nodes(), "node id out of range");
  DSN_REQUIRE(s != t, "edge connectivity needs distinct endpoints");
  FlowScratch scratch;
  return edge_disjoint_paths_capped(g, s, t, kUnreachable, scratch);
}

std::uint32_t edge_connectivity(const Graph& g) {
  const NodeId n = g.num_nodes();
  DSN_REQUIRE(n >= 2, "edge connectivity needs >= 2 nodes");
  if (!is_connected(g)) return 0;
  // Edge connectivity never exceeds the minimum degree, so start the running
  // minimum there: every per-target flow is capped at the current best, which
  // lets targets matching the trivial bound stop right at it instead of
  // running the flow to completion plus a final failed augmenting search.
  std::size_t min_degree = g.degree(0);
  for (NodeId u = 1; u < n; ++u) min_degree = std::min(min_degree, g.degree(u));
  auto best = static_cast<std::uint32_t>(min_degree);
  FlowScratch scratch;
  for (NodeId t = 1; t < n && best > 0; ++t) {
    best = std::min(best, edge_disjoint_paths_capped(g, 0, t, best, scratch));
  }
  return best;
}

}  // namespace dsn
