// 64-way bit-parallel multi-source BFS over a CsrView (MS-BFS, Then et al.,
// VLDB 2014). One uint64_t per node holds the "seen" bits of up to 64
// concurrent sources, so a single sweep over the arcs advances 64 BFS
// frontiers at once: the per-arc work is one AND-NOT plus an OR instead of 64
// separate traversals. All-pairs kernels (diameter/ASPL, eccentricities,
// connectivity) drop from n sequential BFS passes to ceil(n/64) sweeps, and
// aggregate consumers fold discovery events directly instead of scanning an
// n x 64 distance matrix afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dsn/graph/csr.hpp"

namespace dsn {

/// Sources advanced per bit-parallel sweep (bits of one machine word).
inline constexpr std::uint32_t kMsBfsBatch = 64;

/// Reusable per-thread working set for the MS-BFS kernels. Buffers grow to
/// the graph size on first use and are recycled across batches, so a sweep
/// over all sources allocates O(n) once per thread.
struct MsBfsScratch {
  std::vector<std::uint64_t> seen;     ///< per node: bit i set once source i reached it
  std::vector<std::uint64_t> visit;    ///< per node: frontier bits of the current level
  std::vector<std::uint64_t> next;     ///< per node: frontier bits of the next level
  std::vector<NodeId> frontier;        ///< nodes with a nonzero visit word
  std::vector<NodeId> next_frontier;   ///< nodes with a nonzero next word
};

/// Core bit-parallel sweep. Starts one BFS lane per source (lane i =
/// sources[i], bit i) and invokes on_reach(v, level, fresh) for every
/// discovery event: lane set `fresh` first reached node v at hop `level`
/// (>= 1; the level-0 self-discovery of each source is not reported).
/// After the call scratch.seen[v] bit i tells whether lane i reached v.
/// Every lane's event sequence is exactly a BFS from its source.
template <typename OnReach>
void msbfs_sweep(const CsrView& g, std::span<const NodeId> sources, MsBfsScratch& scratch,
                 OnReach&& on_reach) {
  const NodeId n = g.num_nodes();
  const std::size_t b = sources.size();
  DSN_REQUIRE(b >= 1 && b <= kMsBfsBatch, "batch size must be in [1, 64]");

  scratch.seen.assign(n, 0);
  scratch.visit.assign(n, 0);
  scratch.next.assign(n, 0);
  scratch.frontier.clear();
  scratch.next_frontier.clear();

  for (std::size_t i = 0; i < b; ++i) {
    const NodeId src = sources[i];
    DSN_REQUIRE(src < n, "source out of range");
    if (scratch.visit[src] == 0) scratch.frontier.push_back(src);
    scratch.visit[src] |= std::uint64_t{1} << i;
    scratch.seen[src] |= std::uint64_t{1} << i;
  }

  std::uint32_t level = 0;
  std::uint64_t* const seen = scratch.seen.data();
  std::uint64_t* visit = scratch.visit.data();
  std::uint64_t* next = scratch.next.data();
  while (!scratch.frontier.empty()) {
    ++level;
    scratch.next_frontier.clear();
    const auto expand = [&](NodeId u, std::uint64_t w) {
      visit[u] = 0;
      for (const NodeId v : g.neighbors(u)) {
        const std::uint64_t fresh = w & ~seen[v];
        if (fresh == 0) continue;
        if (next[v] == 0) scratch.next_frontier.push_back(v);
        next[v] |= fresh;
        seen[v] |= fresh;
        on_reach(v, level, fresh);
      }
    };
    if (scratch.frontier.size() >= n / 8 + 1) {
      // Dense level: enough of the graph is on the frontier that an ascending
      // scan of the visit words — streaming through the CSR arrays
      // sequentially instead of hopping in discovery order — beats paying a
      // random access per frontier node. The n/8 cutover keeps long-diameter
      // graphs (a ring's frontier is ~batch-size nodes for n/2 levels) on the
      // sparse path, where the scan would cost O(n) per level.
      for (NodeId u = 0; u < n; ++u) {
        if (const std::uint64_t w = visit[u]; w != 0) expand(u, w);
      }
    } else {
      for (const NodeId u : scratch.frontier) expand(u, visit[u]);
    }
    std::swap(visit, next);  // next is all zero again after the swap
    scratch.frontier.swap(scratch.next_frontier);
  }
}

/// Run one bit-parallel BFS batch from up to kMsBfsBatch sources into a
/// distance matrix. `dist` must hold at least num_nodes * kMsBfsBatch entries
/// and is written in node-major layout: dist[v * kMsBfsBatch + i] = hops from
/// sources[i] to v (kUnreachable when disconnected). Lanes beyond
/// sources.size() are left untouched. Distances are bit-identical to
/// bfs_distances on the source Graph. A single-source batch takes a plain
/// frontier-BFS fast path.
void msbfs_batch(const CsrView& g, std::span<const NodeId> sources, std::uint32_t* dist,
                 MsBfsScratch& scratch);

/// Frontier BFS over the CSR snapshot into a caller-provided row of `stride`-
/// spaced entries: dist[v * stride] = hops from src to v. Used as the
/// single-source tail fallback of msbfs_batch and by is_connected.
void csr_bfs_distances(const CsrView& g, NodeId src, std::uint32_t* dist,
                       std::size_t stride, MsBfsScratch& scratch);

/// Convenience: full distance vector from one source (CSR-backed equivalent
/// of bfs_distances).
std::vector<std::uint32_t> csr_bfs_distances(const CsrView& g, NodeId src);

}  // namespace dsn
