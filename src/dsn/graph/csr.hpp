// Immutable compressed-sparse-row snapshot of a Graph.
//
// The adjacency-list Graph is ideal for incremental construction but poor for
// traversal-heavy kernels: every neighbors(u) hop chases a separate heap
// allocation. CsrView packs the whole adjacency into one contiguous
// allocation — an offset array followed by parallel neighbor/link arrays in
// the Graph's insertion order — so BFS sweeps, gain updates and intersection
// kernels walk sequential memory. The snapshot does not observe later
// mutations of the source Graph; rebuild after editing.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "dsn/common/error.hpp"
#include "dsn/common/types.hpp"
#include "dsn/graph/graph.hpp"

namespace dsn {

class CsrView {
 public:
  CsrView() = default;
  explicit CsrView(const Graph& g);

  /// Build directly from an undirected edge list: link ids are the list
  /// indices, and each node's neighbors appear in ascending link id — exactly
  /// the adjacency a Graph built by add_link() in list order would produce.
  /// Used by the shortcut-set optimizer to snapshot mutated placements
  /// without paying Graph's per-node adjacency allocations.
  CsrView(NodeId num_nodes, std::span<const std::pair<NodeId, NodeId>> links);

  NodeId num_nodes() const { return num_nodes_; }
  /// Directed arc count: two per undirected link.
  std::size_t num_arcs() const { return num_arcs_; }

  /// Neighbor node ids of u, in the source Graph's insertion order.
  std::span<const NodeId> neighbors(NodeId u) const {
    DSN_REQUIRE(u < num_nodes_, "node id out of range");
    return {buf_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Link ids parallel to neighbors(u): links(u)[k] carries u—neighbors(u)[k].
  std::span<const LinkId> links(NodeId u) const {
    DSN_REQUIRE(u < num_nodes_, "node id out of range");
    return {buf_.data() + num_arcs_ + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  std::size_t degree(NodeId u) const {
    DSN_REQUIRE(u < num_nodes_, "node id out of range");
    return offsets_[u + 1] - offsets_[u];
  }

  /// Sorted, parallel-link-deduplicated neighbor set of u. Only available
  /// after build_sorted_neighbors() (intersection kernels opt in; plain BFS
  /// consumers skip the sort cost).
  std::span<const NodeId> sorted_neighbors(NodeId u) const {
    DSN_REQUIRE(u < num_nodes_, "node id out of range");
    DSN_REQUIRE(!sorted_offsets_.empty(), "build_sorted_neighbors() not called");
    return {sorted_.data() + sorted_offsets_[u], sorted_offsets_[u + 1] - sorted_offsets_[u]};
  }

  /// Build the sorted/deduplicated neighbor sets (idempotent).
  void build_sorted_neighbors();

 private:
  NodeId num_nodes_ = 0;
  std::size_t num_arcs_ = 0;
  // One allocation: neighbor array [0, num_arcs_) then link array
  // [num_arcs_, 2 * num_arcs_), both indexed through offsets_.
  std::vector<std::uint32_t> buf_;
  std::vector<std::size_t> offsets_;  // size num_nodes_ + 1
  std::vector<std::size_t> sorted_offsets_;
  std::vector<NodeId> sorted_;
};

}  // namespace dsn
