// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/graph/msbfs.hpp"

#include <bit>

namespace dsn {

void csr_bfs_distances(const CsrView& g, NodeId src, std::uint32_t* dist,
                       std::size_t stride, MsBfsScratch& scratch) {
  const NodeId n = g.num_nodes();
  DSN_REQUIRE(src < n, "source out of range");
  for (NodeId v = 0; v < n; ++v) dist[static_cast<std::size_t>(v) * stride] = kUnreachable;
  scratch.frontier.clear();
  scratch.next_frontier.clear();
  scratch.frontier.push_back(src);
  dist[static_cast<std::size_t>(src) * stride] = 0;
  std::uint32_t level = 0;
  while (!scratch.frontier.empty()) {
    ++level;
    scratch.next_frontier.clear();
    for (const NodeId u : scratch.frontier) {
      for (const NodeId v : g.neighbors(u)) {
        std::uint32_t& d = dist[static_cast<std::size_t>(v) * stride];
        if (d == kUnreachable) {
          d = level;
          scratch.next_frontier.push_back(v);
        }
      }
    }
    scratch.frontier.swap(scratch.next_frontier);
  }
}

std::vector<std::uint32_t> csr_bfs_distances(const CsrView& g, NodeId src) {
  std::vector<std::uint32_t> dist(g.num_nodes());
  MsBfsScratch scratch;
  csr_bfs_distances(g, src, dist.data(), 1, scratch);
  return dist;
}

void msbfs_batch(const CsrView& g, std::span<const NodeId> sources, std::uint32_t* dist,
                 MsBfsScratch& scratch) {
  const NodeId n = g.num_nodes();
  const std::size_t b = sources.size();
  DSN_REQUIRE(b >= 1 && b <= kMsBfsBatch, "batch size must be in [1, 64]");
  if (b == 1) {  // masking overhead buys nothing for a lone tail source
    csr_bfs_distances(g, sources[0], dist, kMsBfsBatch, scratch);
    return;
  }
  for (NodeId v = 0; v < n; ++v) {
    std::uint32_t* row = dist + static_cast<std::size_t>(v) * kMsBfsBatch;
    for (std::size_t i = 0; i < b; ++i) row[i] = kUnreachable;
  }
  for (std::size_t i = 0; i < b; ++i) {
    DSN_REQUIRE(sources[i] < n, "source out of range");
    dist[static_cast<std::size_t>(sources[i]) * kMsBfsBatch + i] = 0;
  }
  msbfs_sweep(g, sources, scratch,
              [dist](NodeId v, std::uint32_t level, std::uint64_t fresh) {
                std::uint32_t* row = dist + static_cast<std::size_t>(v) * kMsBfsBatch;
                do {
                  row[std::countr_zero(fresh)] = level;
                  fresh &= fresh - 1;
                } while (fresh != 0);
              });
}

}  // namespace dsn
