#include "dsn/graph/csr.hpp"

#include <algorithm>

namespace dsn {

CsrView::CsrView(const Graph& g) : num_nodes_(g.num_nodes()), num_arcs_(2 * g.num_links()) {
  offsets_.resize(static_cast<std::size_t>(num_nodes_) + 1);
  buf_.resize(2 * num_arcs_);
  std::size_t at = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    offsets_[u] = at;
    for (const AdjHalf& h : g.neighbors(u)) {
      buf_[at] = h.to;
      buf_[num_arcs_ + at] = h.link;
      ++at;
    }
  }
  offsets_[num_nodes_] = at;
  DSN_ASSERT(at == num_arcs_, "adjacency halves must cover every arc");
}

void CsrView::build_sorted_neighbors() {
  if (!sorted_offsets_.empty()) return;  // already built
  sorted_offsets_.resize(static_cast<std::size_t>(num_nodes_) + 1);
  sorted_.reserve(num_arcs_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    sorted_offsets_[u] = sorted_.size();
    const auto nbrs = neighbors(u);
    sorted_.insert(sorted_.end(), nbrs.begin(), nbrs.end());
    const auto begin = sorted_.begin() + static_cast<std::ptrdiff_t>(sorted_offsets_[u]);
    std::sort(begin, sorted_.end());
    sorted_.erase(std::unique(begin, sorted_.end()), sorted_.end());
  }
  sorted_offsets_[num_nodes_] = sorted_.size();
}

}  // namespace dsn
