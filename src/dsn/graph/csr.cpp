#include "dsn/graph/csr.hpp"

#include <algorithm>

namespace dsn {

CsrView::CsrView(const Graph& g) : num_nodes_(g.num_nodes()), num_arcs_(2 * g.num_links()) {
  offsets_.resize(static_cast<std::size_t>(num_nodes_) + 1);
  buf_.resize(2 * num_arcs_);
  std::size_t at = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    offsets_[u] = at;
    for (const AdjHalf& h : g.neighbors(u)) {
      buf_[at] = h.to;
      buf_[num_arcs_ + at] = h.link;
      ++at;
    }
  }
  offsets_[num_nodes_] = at;
  DSN_ASSERT(at == num_arcs_, "adjacency halves must cover every arc");
}

CsrView::CsrView(NodeId num_nodes, std::span<const std::pair<NodeId, NodeId>> links)
    : num_nodes_(num_nodes), num_arcs_(2 * links.size()) {
  offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  buf_.resize(2 * num_arcs_);
  // Pass 1: degrees into offsets_[u + 1], then prefix-sum.
  for (const auto& [u, v] : links) {
    DSN_REQUIRE(u < num_nodes_ && v < num_nodes_, "link endpoint out of range");
    DSN_REQUIRE(u != v, "self loops are not allowed");
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (NodeId u = 0; u < num_nodes_; ++u) offsets_[u + 1] += offsets_[u];
  // Pass 2: fill in link-id order so each node's adjacency matches the
  // insertion order a Graph would have produced.
  std::vector<std::size_t> at(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t id = 0; id < links.size(); ++id) {
    const auto [u, v] = links[id];
    buf_[at[u]] = v;
    buf_[num_arcs_ + at[u]] = static_cast<std::uint32_t>(id);
    ++at[u];
    buf_[at[v]] = u;
    buf_[num_arcs_ + at[v]] = static_cast<std::uint32_t>(id);
    ++at[v];
  }
  DSN_ASSERT(offsets_[num_nodes_] == num_arcs_, "edge list must cover every arc");
}

void CsrView::build_sorted_neighbors() {
  if (!sorted_offsets_.empty()) return;  // already built
  sorted_offsets_.resize(static_cast<std::size_t>(num_nodes_) + 1);
  sorted_.reserve(num_arcs_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    sorted_offsets_[u] = sorted_.size();
    const auto nbrs = neighbors(u);
    sorted_.insert(sorted_.end(), nbrs.begin(), nbrs.end());
    const auto begin = sorted_.begin() + static_cast<std::ptrdiff_t>(sorted_offsets_[u]);
    std::sort(begin, sorted_.end());
    sorted_.erase(std::unique(begin, sorted_.end()), sorted_.end());
  }
  sorted_offsets_[num_nodes_] = sorted_.size();
}

}  // namespace dsn
