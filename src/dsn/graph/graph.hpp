// Undirected multigraph used to represent switch-to-switch topologies.
//
// Nodes are dense ids [0, n). Edges (links) are undirected, identified by a
// dense LinkId, and parallel edges are allowed (the DSN-E extension adds Up
// links physically parallel to ring links). Adjacency is stored per node as
// (neighbor, link) halves in insertion order, so generators produce
// deterministic port orderings — the simulator relies on this to map
// adjacency positions to switch ports.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "dsn/common/error.hpp"
#include "dsn/common/types.hpp"

namespace dsn {

/// One directed half of an undirected link, as seen from a node's adjacency.
struct AdjHalf {
  NodeId to;
  LinkId link;
  friend bool operator==(const AdjHalf&, const AdjHalf&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId num_nodes) : adj_(num_nodes) {}

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t num_links() const { return links_.size(); }

  /// Add an undirected link u—v. Self loops are rejected; parallel edges are
  /// allowed. Returns the new link id.
  LinkId add_link(NodeId u, NodeId v) {
    DSN_REQUIRE(u < num_nodes() && v < num_nodes(), "node id out of range");
    DSN_REQUIRE(u != v, "self loops are not allowed");
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.emplace_back(u, v);
    adj_[u].push_back({v, id});
    adj_[v].push_back({u, id});
    return id;
  }

  /// Add u—v only if no such link exists yet. Returns the link id (existing
  /// or new).
  LinkId add_link_unique(NodeId u, NodeId v) {
    if (const LinkId existing = find_link(u, v); existing != kInvalidLink) return existing;
    return add_link(u, v);
  }

  /// First link id between u and v, or kInvalidLink.
  LinkId find_link(NodeId u, NodeId v) const {
    DSN_REQUIRE(u < num_nodes() && v < num_nodes(), "node id out of range");
    // Scan the smaller adjacency.
    const NodeId base = adj_[u].size() <= adj_[v].size() ? u : v;
    const NodeId other = base == u ? v : u;
    for (const AdjHalf& h : adj_[base])
      if (h.to == other) return h.link;
    return kInvalidLink;
  }

  bool has_link(NodeId u, NodeId v) const { return find_link(u, v) != kInvalidLink; }

  std::span<const AdjHalf> neighbors(NodeId u) const {
    DSN_REQUIRE(u < num_nodes(), "node id out of range");
    return adj_[u];
  }

  std::size_t degree(NodeId u) const {
    DSN_REQUIRE(u < num_nodes(), "node id out of range");
    return adj_[u].size();
  }

  /// Endpoints (u, v) of a link with u,v in insertion order.
  std::pair<NodeId, NodeId> link_endpoints(LinkId id) const {
    DSN_REQUIRE(id < links_.size(), "link id out of range");
    return links_[id];
  }

  /// The endpoint of `id` that is not `from`.
  NodeId link_other_end(LinkId id, NodeId from) const {
    const auto [u, v] = link_endpoints(id);
    DSN_REQUIRE(from == u || from == v, "node is not an endpoint of link");
    return from == u ? v : u;
  }

  double average_degree() const {
    if (num_nodes() == 0) return 0.0;
    return 2.0 * static_cast<double>(num_links()) / static_cast<double>(num_nodes());
  }

 private:
  std::vector<std::vector<AdjHalf>> adj_;
  std::vector<std::pair<NodeId, NodeId>> links_;
};

}  // namespace dsn
