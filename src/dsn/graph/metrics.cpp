#include "dsn/graph/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "dsn/common/thread_pool.hpp"

namespace dsn {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  DSN_REQUIRE(src < g.num_nodes(), "source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{src};
  std::vector<NodeId> next;
  dist[src] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const AdjHalf& h : g.neighbors(u)) {
        if (dist[h.to] == kUnreachable) {
          dist[h.to] = level;
          next.push_back(h.to);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

BfsTree bfs_tree(const Graph& g, NodeId src) {
  DSN_REQUIRE(src < g.num_nodes(), "source out of range");
  BfsTree t;
  t.dist.assign(g.num_nodes(), kUnreachable);
  t.parent.assign(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> frontier{src};
  std::vector<NodeId> next;
  t.dist[src] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const AdjHalf& h : g.neighbors(u)) {
        if (t.dist[h.to] == kUnreachable) {
          t.dist[h.to] = level;
          t.parent[h.to] = u;
          next.push_back(h.to);
        }
      }
    }
    frontier.swap(next);
  }
  return t;
}

PathStats compute_path_stats(const Graph& g) {
  PathStats stats;
  const NodeId n = g.num_nodes();
  if (n == 0) return stats;

  std::mutex merge_mutex;
  std::atomic<bool> all_reachable{true};
  std::uint32_t diameter = 0;
  __uint128_t total_hops = 0;
  std::uint64_t reachable_pairs = 0;
  std::vector<std::uint64_t> histogram;

  parallel_for(0, n, [&](std::size_t src) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(src));
    std::uint32_t local_max = 0;
    std::uint64_t local_sum = 0;
    std::uint64_t local_pairs = 0;
    std::vector<std::uint64_t> local_hist;
    for (NodeId v = 0; v < n; ++v) {
      if (v == src) continue;
      if (dist[v] == kUnreachable) {
        all_reachable.store(false, std::memory_order_relaxed);
        continue;
      }
      local_max = std::max(local_max, dist[v]);
      local_sum += dist[v];
      ++local_pairs;
      if (dist[v] >= local_hist.size()) local_hist.resize(dist[v] + 1, 0);
      ++local_hist[dist[v]];
    }
    std::scoped_lock lock(merge_mutex);
    diameter = std::max(diameter, local_max);
    total_hops += local_sum;
    reachable_pairs += local_pairs;
    if (local_hist.size() > histogram.size()) histogram.resize(local_hist.size(), 0);
    for (std::size_t h = 0; h < local_hist.size(); ++h) histogram[h] += local_hist[h];
  });

  stats.connected = n <= 1 || all_reachable.load();
  stats.diameter = diameter;
  stats.avg_shortest_path =
      reachable_pairs == 0 ? 0.0
                           : static_cast<double>(total_hops) / static_cast<double>(reachable_pairs);
  stats.hop_histogram = std::move(histogram);
  return stats;
}

std::vector<std::uint32_t> eccentricities(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> ecc(n, 0);
  parallel_for(0, n, [&](std::size_t src) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(src));
    std::uint32_t m = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] == kUnreachable) {
        m = kUnreachable;
        break;
      }
      m = std::max(m, dist[v]);
    }
    ecc[src] = m;
  });
  return ecc;
}

DegreeStats compute_degree_stats(const Graph& g) {
  DegreeStats s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  s.min_degree = g.degree(0);
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t d = g.degree(u);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d >= s.histogram.size()) s.histogram.resize(d + 1, 0);
    ++s.histogram[d];
  }
  s.avg_degree = g.average_degree();
  return s;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

double clustering_coefficient(const Graph& g) {
  const NodeId n = g.num_nodes();
  double sum = 0.0;
  std::uint64_t counted = 0;
  std::vector<NodeId> nbrs;
  for (NodeId u = 0; u < n; ++u) {
    nbrs.clear();
    for (const AdjHalf& h : g.neighbors(u)) {
      // Parallel links collapse for clustering purposes.
      if (std::find(nbrs.begin(), nbrs.end(), h.to) == nbrs.end()) nbrs.push_back(h.to);
    }
    if (nbrs.size() < 2) continue;
    std::uint64_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.has_link(nbrs[i], nbrs[j])) ++closed;
      }
    }
    const auto pairs = nbrs.size() * (nbrs.size() - 1) / 2;
    sum += static_cast<double>(closed) / static_cast<double>(pairs);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace dsn
