#include "dsn/graph/metrics.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "dsn/common/thread_pool.hpp"
#include "dsn/graph/msbfs.hpp"
#include "dsn/obs/obs.hpp"

namespace dsn {

#if DSN_OBS
namespace {

struct GraphMetrics {
  obs::MetricId batches = obs::MetricsRegistry::global().counter("dsn.graph.msbfs_batches");
  obs::MetricId shard_ns = obs::MetricsRegistry::global().counter("dsn.graph.msbfs_shard_ns");
  obs::MetricId shards_run = obs::MetricsRegistry::global().counter("dsn.graph.msbfs_shards");

  static const GraphMetrics& get() {
    static GraphMetrics metrics;
    return metrics;
  }
};

}  // namespace
#endif  // DSN_OBS

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  DSN_REQUIRE(src < g.num_nodes(), "source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{src};
  std::vector<NodeId> next;
  dist[src] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const AdjHalf& h : g.neighbors(u)) {
        if (dist[h.to] == kUnreachable) {
          dist[h.to] = level;
          next.push_back(h.to);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

BfsTree bfs_tree(const Graph& g, NodeId src) {
  DSN_REQUIRE(src < g.num_nodes(), "source out of range");
  BfsTree t;
  t.dist.assign(g.num_nodes(), kUnreachable);
  t.parent.assign(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> frontier{src};
  std::vector<NodeId> next;
  t.dist[src] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const AdjHalf& h : g.neighbors(u)) {
        if (t.dist[h.to] == kUnreachable) {
          t.dist[h.to] = level;
          t.parent[h.to] = u;
          next.push_back(h.to);
        }
      }
    }
    frontier.swap(next);
  }
  return t;
}

namespace {

/// Shard layout for the all-pairs sweeps: contiguous ranges of 64-source
/// MS-BFS batches, a few per worker so chunks stay balanced without a
/// hot-path mutex — every shard owns its accumulator and the merge happens
/// once, serially, in shard order (deterministic regardless of thread count).
struct BatchPlan {
  std::size_t batches = 0;
  std::size_t shards = 0;
};

BatchPlan plan_batches(std::size_t num_sources, std::size_t workers) {
  BatchPlan p;
  p.batches = (num_sources + kMsBfsBatch - 1) / kMsBfsBatch;
  p.shards = std::max<std::size_t>(1, std::min(p.batches, 4 * workers));
  return p;
}

/// Sources [b * 64, min(n, b * 64 + 64)) of batch b.
std::pair<NodeId, NodeId> batch_span(std::size_t b, NodeId n) {
  const auto lo = static_cast<NodeId>(b * kMsBfsBatch);
  const auto hi = static_cast<NodeId>(
      std::min<std::size_t>(n, b * kMsBfsBatch + kMsBfsBatch));
  return {lo, hi};
}

}  // namespace

PathStats compute_path_stats(const Graph& g) {
  const CsrView csr(g);
  return compute_path_stats(csr);
}

PathStats compute_path_stats(const CsrView& csr) {
  const NodeId n = csr.num_nodes();
  std::vector<NodeId> sources(n);
  std::iota(sources.begin(), sources.end(), NodeId{0});
  return compute_path_stats(csr, sources);
}

PathStats compute_path_stats(const CsrView& csr, std::span<const NodeId> sources) {
  PathStats stats;
  const NodeId n = csr.num_nodes();
  if (n == 0 || sources.empty()) return stats;

  ThreadPool& pool = ThreadPool::global();
  const BatchPlan plan = plan_batches(sources.size(), pool.size());
  // Per-shard hop histograms; every other statistic folds out of them.
  std::vector<std::vector<std::uint64_t>> hists(plan.shards);

  DSN_OBS_SPAN("graph.path_stats");
  pool.parallel_for(0, plan.shards, [&](std::size_t k) {
    DSN_OBS_TIMER(GraphMetrics::get().shard_ns, GraphMetrics::get().shards_run);
    MsBfsScratch scratch;
    std::vector<std::uint64_t>& hist = hists[k];
    const std::size_t begin = k * plan.batches / plan.shards;
    const std::size_t end = (k + 1) * plan.batches / plan.shards;
    DSN_OBS_ADD(GraphMetrics::get().batches,
                static_cast<std::uint64_t>(end - begin));
    for (std::size_t b = begin; b < end; ++b) {
      const std::size_t lo = b * kMsBfsBatch;
      const std::size_t hi = std::min(sources.size(), lo + kMsBfsBatch);
      msbfs_sweep(csr, sources.subspan(lo, hi - lo), scratch,
                  [&hist](NodeId, std::uint32_t level, std::uint64_t fresh) {
                    if (level >= hist.size()) hist.resize(level + 1, 0);
                    hist[level] += static_cast<std::uint64_t>(std::popcount(fresh));
                  });
    }
  });

  std::vector<std::uint64_t> hist;
  for (const auto& h : hists) {
    if (h.size() > hist.size()) hist.resize(h.size(), 0);
    for (std::size_t i = 0; i < h.size(); ++i) hist[i] += h[i];
  }
  __uint128_t total_hops = 0;
  std::uint64_t reachable_pairs = 0;
  for (std::size_t h = 0; h < hist.size(); ++h) {
    reachable_pairs += hist[h];
    total_hops += static_cast<__uint128_t>(h) * hist[h];
  }
  stats.connected =
      n <= 1 ||
      reachable_pairs == static_cast<std::uint64_t>(sources.size()) * (n - 1);
  stats.diameter = hist.empty() ? 0 : static_cast<std::uint32_t>(hist.size() - 1);
  stats.avg_shortest_path =
      reachable_pairs == 0 ? 0.0
                           : static_cast<double>(total_hops) / static_cast<double>(reachable_pairs);
  stats.hop_histogram = std::move(hist);
  return stats;
}

std::vector<std::uint32_t> eccentricities(const Graph& g) {
  const CsrView csr(g);
  return eccentricities(csr);
}

std::vector<std::uint32_t> eccentricities(const CsrView& csr) {
  const NodeId n = csr.num_nodes();
  std::vector<std::uint32_t> ecc(n, 0);
  if (n == 0) return ecc;

  ThreadPool& pool = ThreadPool::global();
  const BatchPlan plan = plan_batches(n, pool.size());

  // Shards own disjoint source ranges, so they write disjoint ecc entries.
  DSN_OBS_SPAN("graph.eccentricities");
  pool.parallel_for(0, plan.shards, [&](std::size_t k) {
    DSN_OBS_TIMER(GraphMetrics::get().shard_ns, GraphMetrics::get().shards_run);
    MsBfsScratch scratch;
    std::vector<NodeId> sources;
    const std::size_t begin = k * plan.batches / plan.shards;
    const std::size_t end = (k + 1) * plan.batches / plan.shards;
    DSN_OBS_ADD(GraphMetrics::get().batches,
                static_cast<std::uint64_t>(end - begin));
    for (std::size_t b = begin; b < end; ++b) {
      const auto [lo, hi] = batch_span(b, n);
      sources.resize(hi - lo);
      std::iota(sources.begin(), sources.end(), lo);

      // A lane's eccentricity is the last level at which it discovered any
      // node; fold the per-level union of fresh bits instead of per-pair work.
      std::uint32_t cur_level = 0;
      std::uint64_t pending = 0;
      const auto flush = [&] {
        while (pending != 0) {
          ecc[lo + static_cast<NodeId>(std::countr_zero(pending))] = cur_level;
          pending &= pending - 1;
        }
      };
      msbfs_sweep(csr, sources, scratch,
                  [&](NodeId, std::uint32_t level, std::uint64_t fresh) {
                    if (level != cur_level) {
                      flush();
                      cur_level = level;
                    }
                    pending |= fresh;
                  });
      flush();

      // Lanes that missed any node are unreachable-eccentric.
      const std::size_t lanes = hi - lo;
      const std::uint64_t full =
          lanes == kMsBfsBatch ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
      std::uint64_t missing = 0;
      for (NodeId v = 0; v < n; ++v) missing |= full & ~scratch.seen[v];
      while (missing != 0) {
        ecc[lo + static_cast<NodeId>(std::countr_zero(missing))] = kUnreachable;
        missing &= missing - 1;
      }
    }
  });
  return ecc;
}

DegreeStats compute_degree_stats(const Graph& g) {
  DegreeStats s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  s.min_degree = g.degree(0);
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t d = g.degree(u);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d >= s.histogram.size()) s.histogram.resize(d + 1, 0);
    ++s.histogram[d];
  }
  s.avg_degree = g.average_degree();
  return s;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const CsrView csr(g);
  return is_connected(csr);
}

bool is_connected(const CsrView& csr) {
  if (csr.num_nodes() <= 1) return true;
  const auto dist = csr_bfs_distances(csr, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

namespace {

std::uint64_t sorted_intersection_size(std::span<const NodeId> a,
                                       std::span<const NodeId> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

double clustering_coefficient(const Graph& g) {
  CsrView csr(g);
  return clustering_coefficient(csr);
}

double clustering_coefficient(CsrView& csr) {
  const NodeId n = csr.num_nodes();
  if (n == 0) return 0.0;
  csr.build_sorted_neighbors();

  ThreadPool& pool = ThreadPool::global();
  const std::size_t shards =
      std::max<std::size_t>(1, std::min<std::size_t>(n, 4 * pool.size()));
  struct Partial {
    double sum = 0.0;
    std::uint64_t counted = 0;
  };
  std::vector<Partial> partials(shards);

  pool.parallel_for(0, shards, [&](std::size_t k) {
    Partial& part = partials[k];
    const auto begin = static_cast<NodeId>(k * n / shards);
    const auto end = static_cast<NodeId>((k + 1) * n / shards);
    for (NodeId u = begin; u < end; ++u) {
      const auto nbrs = csr.sorted_neighbors(u);
      if (nbrs.size() < 2) continue;
      // Each closed neighbor pair {a, b} is counted twice: once through a's
      // neighbor set and once through b's (u itself is in neither side's
      // intersection because self loops are rejected).
      std::uint64_t closed_twice = 0;
      for (const NodeId v : nbrs) {
        closed_twice += sorted_intersection_size(nbrs, csr.sorted_neighbors(v));
      }
      const std::uint64_t pairs = nbrs.size() * (nbrs.size() - 1) / 2;
      part.sum += static_cast<double>(closed_twice / 2) / static_cast<double>(pairs);
      ++part.counted;
    }
  });

  double sum = 0.0;
  std::uint64_t counted = 0;
  for (const Partial& p : partials) {
    sum += p.sum;
    counted += p.counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace dsn
