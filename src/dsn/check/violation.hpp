// Structured findings emitted by the invariant checker (dsn::check). The
// validator never throws on a bad topology: every broken invariant becomes a
// Violation record so callers (tests, dsn-lint, the DSN_VALIDATE hook) can
// report all problems at once and decide how hard to fail.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dsn/common/types.hpp"

namespace dsn::check {

/// The invariant a Violation refers to. Kept stable and fine-grained so tests
/// can assert the *exact* defect an injected corruption produces.
enum class ViolationKind {
  // Graph-representation invariants.
  kAdjacencySymmetry,   ///< link half present at one endpoint but not the other
  kLinkIdBijection,     ///< adjacency half references a link it is not part of
  kSelfLoop,            ///< link with identical endpoints
  kNodeIdRange,         ///< link endpoint or adjacency target out of [0, n)
  kLinkRoleCount,       ///< link_roles.size() != num_links()
  kLinkRoleInvalid,     ///< role that cannot occur in this topology kind
  kNameMetadata,        ///< name does not encode the kind's expected parameters
  // Topology-level structure.
  kDisconnected,        ///< some node cannot reach some other node
  kRingIncomplete,      ///< ring-based kind missing a (i, i+1 mod n) ring link
  kGridIncomplete,      ///< torus/grid kind missing a lattice or wrap link
  kDegreeBound,         ///< average/exact degree bound of the kind violated
  // DSN shortcut law (paper §IV-A).
  kShortcutMissing,     ///< a level-l <= x node owns no shortcut
  kShortcutWrongTarget, ///< shortcut does not land on the nearest legal target
  kShortcutUnexpected,  ///< shortcut-role link not predicted by the law
  // Deadlock freedom.
  kCdgCyclic,           ///< channel dependency graph has a directed cycle
  // Routing consistency.
  kRouteNonNeighbor,    ///< a route hop is not a physical graph link
  kRouteWrongEndpoint,  ///< route does not start at src / end at dst
  kRouteTooLong,        ///< route exceeded the defensive hop bound
  kRouteFallback,       ///< DSN routing hit its defensive ring-walk fallback
  kRoutePhaseOrder,     ///< PRE-WORK/MAIN/FINISH phases out of order
  // Whole-network route analysis (opt-in check_load).
  kRouteLoop,           ///< a route revisits a node
  kRouteBoundExceeded,  ///< a route exceeds the paper's analytic hop bound
  kChannelOverload,     ///< static channel load above the configured limit
};

const char* to_string(ViolationKind kind);

/// Errors fail validation; warnings are reported but do not.
enum class Severity : std::uint8_t { kWarning, kError };

const char* to_string(Severity severity);

/// One broken invariant, anchored to a node and/or link where meaningful.
struct Violation {
  ViolationKind kind;
  Severity severity = Severity::kError;
  NodeId node = kInvalidNode;
  LinkId link = kInvalidLink;
  std::string message;

  /// "ERROR shortcut-missing node=17: ..." one-line rendering.
  std::string to_line() const;
};

/// Result of one validation run.
struct ValidationReport {
  std::string topology;           ///< name of the validated topology
  std::size_t checks_run = 0;     ///< number of check families executed
  std::vector<Violation> violations;
  /// Informational findings that are not violations (e.g. the static
  /// channel-load statistics computed by the opt-in check_load family).
  std::vector<std::string> notes;

  std::size_t errors() const;
  std::size_t warnings() const;
  /// True when no error-severity violation was recorded.
  bool ok() const { return errors() == 0; }
  /// True when `kind` appears among the violations.
  bool has(ViolationKind kind) const;

  /// Multi-line human-readable report (one line per violation + a summary).
  std::string summary() const;
};

}  // namespace dsn::check
