#include "dsn/check/violation.hpp"

#include <algorithm>
#include <sstream>

namespace dsn::check {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kAdjacencySymmetry: return "adjacency-symmetry";
    case ViolationKind::kLinkIdBijection: return "link-id-bijection";
    case ViolationKind::kSelfLoop: return "self-loop";
    case ViolationKind::kNodeIdRange: return "node-id-range";
    case ViolationKind::kLinkRoleCount: return "link-role-count";
    case ViolationKind::kLinkRoleInvalid: return "link-role-invalid";
    case ViolationKind::kNameMetadata: return "name-metadata";
    case ViolationKind::kDisconnected: return "disconnected";
    case ViolationKind::kRingIncomplete: return "ring-incomplete";
    case ViolationKind::kGridIncomplete: return "grid-incomplete";
    case ViolationKind::kDegreeBound: return "degree-bound";
    case ViolationKind::kShortcutMissing: return "shortcut-missing";
    case ViolationKind::kShortcutWrongTarget: return "shortcut-wrong-target";
    case ViolationKind::kShortcutUnexpected: return "shortcut-unexpected";
    case ViolationKind::kCdgCyclic: return "cdg-cyclic";
    case ViolationKind::kRouteNonNeighbor: return "route-non-neighbor";
    case ViolationKind::kRouteWrongEndpoint: return "route-wrong-endpoint";
    case ViolationKind::kRouteTooLong: return "route-too-long";
    case ViolationKind::kRouteFallback: return "route-fallback";
    case ViolationKind::kRoutePhaseOrder: return "route-phase-order";
    case ViolationKind::kRouteLoop: return "route-loop";
    case ViolationKind::kRouteBoundExceeded: return "route-bound-exceeded";
    case ViolationKind::kChannelOverload: return "channel-overload";
  }
  return "unknown";
}

const char* to_string(Severity severity) {
  return severity == Severity::kError ? "ERROR" : "WARNING";
}

std::string Violation::to_line() const {
  std::ostringstream os;
  os << to_string(severity) << " " << to_string(kind);
  if (node != kInvalidNode) os << " node=" << node;
  if (link != kInvalidLink) os << " link=" << link;
  os << ": " << message;
  return os.str();
}

std::size_t ValidationReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [](const Violation& v) { return v.severity == Severity::kError; }));
}

std::size_t ValidationReport::warnings() const {
  return violations.size() - errors();
}

bool ValidationReport::has(ViolationKind kind) const {
  return std::any_of(violations.begin(), violations.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

std::string ValidationReport::summary() const {
  std::ostringstream os;
  for (const Violation& v : violations) os << v.to_line() << "\n";
  for (const std::string& n : notes) os << "note: " << n << "\n";
  os << topology << ": " << checks_run << " checks, " << errors() << " errors, "
     << warnings() << " warnings";
  return os.str();
}

}  // namespace dsn::check
