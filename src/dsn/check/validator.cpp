#include "dsn/check/validator.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "dsn/analysis/route_analysis.hpp"
#include "dsn/common/math.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/routing/dor.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/greedy.hpp"
#include "dsn/routing/updown.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"

namespace dsn::check {

namespace {

/// Appends violations to a report, capped so a systematically corrupt
/// topology does not produce O(n) copies of the same finding.
class Reporter {
 public:
  Reporter(ValidationReport& report, std::size_t cap) : report_(&report), cap_(cap) {}

  void add(Violation v) {
    if (report_->violations.size() < cap_) report_->violations.push_back(std::move(v));
  }

  void add(ViolationKind kind, Severity severity, NodeId node, LinkId link,
           std::string message) {
    add(Violation{kind, severity, node, link, std::move(message)});
  }

  bool full() const { return report_->violations.size() >= cap_; }

 private:
  ValidationReport* report_;
  std::size_t cap_;
};

/// All maximal runs of digits in `name`, in order ("dsn-5-100" -> {5, 100}).
std::vector<std::uint64_t> name_numbers(const std::string& name) {
  std::vector<std::uint64_t> out;
  std::uint64_t cur = 0;
  bool in_number = false;
  for (const char c : name) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      cur = cur * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      out.push_back(cur);
      cur = 0;
      in_number = false;
    }
  }
  if (in_number) out.push_back(cur);
  return out;
}

bool role_allowed(TopologyKind kind, LinkRole role) {
  switch (kind) {
    case TopologyKind::kRing:
      return role == LinkRole::kRing;
    case TopologyKind::kTorus2D:
    case TopologyKind::kTorus3D:
      return role == LinkRole::kRing || role == LinkRole::kWrap;
    case TopologyKind::kDln:
    case TopologyKind::kDlnRandom:
    case TopologyKind::kKleinberg:
    case TopologyKind::kRandomRegular:
    case TopologyKind::kDsn:
    case TopologyKind::kDsnFlex:
    case TopologyKind::kDsnBidir:
      return role == LinkRole::kRing || role == LinkRole::kShortcut;
    case TopologyKind::kDsnD:
      return role == LinkRole::kRing || role == LinkRole::kShortcut ||
             role == LinkRole::kDLocal;
    case TopologyKind::kDsnE:
      return role == LinkRole::kRing || role == LinkRole::kShortcut ||
             role == LinkRole::kUp || role == LinkRole::kExtra;
  }
  return false;
}

bool is_ring_based(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kRing:
    case TopologyKind::kDln:
    case TopologyKind::kDlnRandom:
    case TopologyKind::kDsn:
    case TopologyKind::kDsnD:
    case TopologyKind::kDsnE:
    case TopologyKind::kDsnFlex:
    case TopologyKind::kDsnBidir:
      return true;
    default:
      return false;
  }
}

bool is_dsn_family(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDsn:
    case TopologyKind::kDsnD:
    case TopologyKind::kDsnE:
    case TopologyKind::kDsnBidir:
      return true;
    default:
      return false;
  }
}

/// DSN parameters re-derived from the topology (n from the graph, x from the
/// kind and name). nullopt when the name does not encode what the kind needs.
struct DsnParams {
  std::uint32_t n = 0;
  std::uint32_t p = 0;   ///< ceil(log2 n)
  std::uint32_t x = 0;   ///< shortcut-set size of the (base) DSN
  std::uint32_t xd = 0;  ///< DSN-D express links per super node (0 otherwise)
  bool mirrored = false; ///< DSN-bidir: shortcut law holds CW or mirrored CCW
};

std::optional<DsnParams> parse_dsn_params(const Topology& topo) {
  const std::uint32_t n = topo.num_nodes();
  if (n < 8) return std::nullopt;
  DsnParams params;
  params.n = n;
  params.p = ilog2_ceil(n);
  const std::vector<std::uint64_t> nums = name_numbers(topo.name);
  switch (topo.kind) {
    case TopologyKind::kDsn:
      if (nums.size() != 2 || nums[1] != n) return std::nullopt;
      params.x = static_cast<std::uint32_t>(nums[0]);
      break;
    case TopologyKind::kDsnE:
      if (nums.size() != 1 || nums[0] != n) return std::nullopt;
      params.x = params.p - 1;
      break;
    case TopologyKind::kDsnBidir:
      if (nums.size() != 1 || nums[0] != n) return std::nullopt;
      params.x = params.p - 1;
      params.mirrored = true;
      break;
    case TopologyKind::kDsnD: {
      if (nums.size() != 2 || nums[1] != n) return std::nullopt;
      params.xd = static_cast<std::uint32_t>(nums[0]);
      const std::uint32_t base = params.p - ilog2_ceil(params.p);
      params.x = base >= 1 ? base : 1;
      if (params.xd < 1 || params.xd >= params.p) return std::nullopt;
      break;
    }
    default:
      return std::nullopt;
  }
  if (params.x < 1 || params.x > params.p - 1) return std::nullopt;
  return params;
}

NodeId ring_succ(NodeId i, std::uint32_t n) { return i + 1 == n ? 0 : i + 1; }
NodeId ring_pred(NodeId i, std::uint32_t n) { return i == 0 ? n - 1 : i - 1; }

/// The shortcut law (§IV-A), derived from the paper's definition: the first
/// clockwise node of level l+1 at ring distance >= floor(n/2^l) from i, or
/// kInvalidNode when i's level exceeds p-1 (no such level exists).
NodeId expected_shortcut_target(std::uint32_t n, std::uint32_t p, NodeId i) {
  const std::uint32_t l = i % p + 1;  // level(i) in [1, p]
  if (l >= p + 1) return kInvalidNode;
  const std::uint32_t min_span = n >> l;
  NodeId j = static_cast<NodeId>((static_cast<std::uint64_t>(i) + min_span) % n);
  for (std::uint32_t scanned = 0; scanned <= n; ++scanned) {
    if (j % p == l) return j == i ? kInvalidNode : j;
    j = ring_succ(j, n);
  }
  return kInvalidNode;
}

// -------------------------------------------------------------------------
// Check families
// -------------------------------------------------------------------------

void check_representation(const Topology& topo, ValidationReport& report,
                          Reporter& rep, std::size_t cap) {
  const Graph& g = topo.graph;
  std::vector<std::pair<NodeId, NodeId>> links;
  links.reserve(g.num_links());
  for (LinkId id = 0; id < g.num_links(); ++id) links.push_back(g.link_endpoints(id));
  std::vector<std::vector<AdjHalf>> adjacency(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto span = g.neighbors(u);
    adjacency[u].assign(span.begin(), span.end());
  }
  check_raw_graph(g.num_nodes(), links, adjacency, report, cap);

  ++report.checks_run;
  if (topo.link_roles.size() != g.num_links()) {
    rep.add(ViolationKind::kLinkRoleCount, Severity::kError, kInvalidNode, kInvalidLink,
            "link_roles has " + std::to_string(topo.link_roles.size()) +
                " entries for " + std::to_string(g.num_links()) + " links");
  }
  const std::size_t roles = std::min(topo.link_roles.size(), g.num_links());
  for (LinkId id = 0; id < roles; ++id) {
    if (!role_allowed(topo.kind, topo.link_roles[id])) {
      rep.add(ViolationKind::kLinkRoleInvalid, Severity::kError, kInvalidNode, id,
              std::string("role '") + to_string(topo.link_roles[id]) +
                  "' is not legal in a " + to_string(topo.kind) + " topology");
      if (rep.full()) break;
    }
  }
}

/// Role of the first link between u and v matching `role`, scanning all
/// parallel links (Graph::find_link only returns the first).
bool has_link_with_role(const Topology& topo, NodeId u, NodeId v, LinkRole role) {
  for (const AdjHalf& h : topo.graph.neighbors(u)) {
    if (h.to == v && h.link < topo.link_roles.size() && topo.link_roles[h.link] == role)
      return true;
  }
  return false;
}

void check_ring_completeness(const Topology& topo, Reporter& rep) {
  const std::uint32_t n = topo.num_nodes();
  for (NodeId i = 0; i < n && !rep.full(); ++i) {
    const NodeId j = ring_succ(i, n);
    if (!has_link_with_role(topo, i, j, LinkRole::kRing)) {
      rep.add(ViolationKind::kRingIncomplete, Severity::kError, i, kInvalidLink,
              "missing ring link to successor " + std::to_string(j));
    }
  }
}

void check_grid_completeness(const Topology& topo, bool wraparound, Reporter& rep) {
  const std::uint32_t n = topo.num_nodes();
  std::uint64_t product = 1;
  for (const std::uint32_t d : topo.dims) product *= d;
  if (topo.dims.empty() || product != n) {
    rep.add(ViolationKind::kGridIncomplete, Severity::kError, kInvalidNode, kInvalidLink,
            "grid dims do not multiply to the node count");
    return;
  }
  std::vector<std::uint64_t> stride(topo.dims.size(), 1);
  for (std::size_t a = 1; a < topo.dims.size(); ++a)
    stride[a] = stride[a - 1] * topo.dims[a - 1];
  for (NodeId id = 0; id < n && !rep.full(); ++id) {
    for (std::size_t a = 0; a < topo.dims.size(); ++a) {
      const std::uint32_t d = topo.dims[a];
      if (d < 2) continue;
      const std::uint32_t c = static_cast<std::uint32_t>(id / stride[a]) % d;
      NodeId next = kInvalidNode;
      if (c + 1 < d) {
        next = static_cast<NodeId>(id + stride[a]);
      } else if (wraparound && d > 2) {
        next = static_cast<NodeId>(id - static_cast<std::uint64_t>(c) * stride[a]);
      }
      if (next != kInvalidNode && !topo.graph.has_link(id, next)) {
        rep.add(ViolationKind::kGridIncomplete, Severity::kError, id, kInvalidLink,
                "missing lattice link along axis " + std::to_string(a) + " to node " +
                    std::to_string(next));
      }
    }
  }
}

void check_degree_bounds(const Topology& topo, const std::optional<DsnParams>& dsn,
                         Reporter& rep) {
  const Graph& g = topo.graph;
  const std::uint32_t n = g.num_nodes();
  const double avg = g.average_degree();
  const auto avg_bound = [&](double bound, const char* what) {
    if (avg > bound + 1e-9) {
      rep.add(ViolationKind::kDegreeBound, Severity::kError, kInvalidNode, kInvalidLink,
              std::string(what) + ": average degree " + std::to_string(avg) +
                  " exceeds " + std::to_string(bound));
    }
  };
  const auto exact_degree = [&](std::size_t want) {
    for (NodeId u = 0; u < n && !rep.full(); ++u) {
      if (g.degree(u) != want) {
        rep.add(ViolationKind::kDegreeBound, Severity::kError, u, kInvalidLink,
                "degree " + std::to_string(g.degree(u)) + ", expected exactly " +
                    std::to_string(want));
      }
    }
  };

  switch (topo.kind) {
    case TopologyKind::kRing:
      exact_degree(2);
      break;
    case TopologyKind::kTorus2D:
    case TopologyKind::kTorus3D: {
      std::uint64_t product = 1;
      for (const std::uint32_t d : topo.dims) product *= d;
      if (topo.dims.empty() || product != n) break;  // flagged by the grid check
      std::size_t want = 0;
      for (const std::uint32_t d : topo.dims) want += d == 2 ? 1 : 2;
      exact_degree(want);
      break;
    }
    case TopologyKind::kDsn:
    case TopologyKind::kDsnFlex:
      // Theorem 1: n ring links + at most one shortcut per node.
      avg_bound(4.0, "DSN average-degree law");
      break;
    case TopologyKind::kDsnBidir:
      avg_bound(6.0, "bidirectional DSN average-degree law");
      break;
    case TopologyKind::kDsnE:
      if (dsn) {
        // n ring + <= n shortcut + n Up + 2p Extra links.
        avg_bound(6.0 + 4.0 * dsn->p / n, "DSN-E average-degree law");
      }
      break;
    case TopologyKind::kDsnD:
      if (dsn && dsn->xd >= 1) {
        const std::uint32_t q =
            static_cast<std::uint32_t>(ceil_div(dsn->p, dsn->xd));
        const double express = static_cast<double>(n) / q + 1.0;
        avg_bound(4.0 + 2.0 * express / n, "DSN-D average-degree law");
      }
      break;
    case TopologyKind::kRandomRegular: {
      const std::vector<std::uint64_t> nums = name_numbers(topo.name);
      if (nums.size() == 2 && nums[1] == n && nums[0] < n) {
        exact_degree(static_cast<std::size_t>(nums[0]));
      }
      break;
    }
    default:
      break;  // Kleinberg / Watts-Strogatz / DLN-random degrees are stochastic
  }
}

void check_dsn_shortcut_law(const Topology& topo, const DsnParams& params, Reporter& rep) {
  const Graph& g = topo.graph;
  const std::uint32_t n = params.n;
  const std::uint32_t p = params.p;

  // Forward direction: every level-l <= x node owns its lawful shortcut.
  for (NodeId i = 0; i < n && !rep.full(); ++i) {
    const std::uint32_t l = i % p + 1;
    if (l > params.x) continue;
    const NodeId j = expected_shortcut_target(n, p, i);
    if (j == kInvalidNode) {
      rep.add(ViolationKind::kShortcutMissing, Severity::kError, i, kInvalidLink,
              "no legal level-" + std::to_string(l + 1) + " target exists on the ring");
      continue;
    }
    if (j == ring_succ(i, n) || j == ring_pred(i, n)) continue;  // collapsed onto ring
    const bool present = params.mirrored
                             ? g.has_link(i, j)
                             : has_link_with_role(topo, i, j, LinkRole::kShortcut);
    if (!present) {
      rep.add(ViolationKind::kShortcutMissing, Severity::kError, i, kInvalidLink,
              "level-" + std::to_string(l) + " shortcut to node " + std::to_string(j) +
                  " (min span " + std::to_string(n >> l) + ") is missing");
    }
  }

  // Converse direction: every shortcut-role link is predicted by the law. The
  // owner is the first endpoint (generators insert links owner-first).
  const std::size_t roles = std::min(topo.link_roles.size(), g.num_links());
  for (LinkId id = 0; id < roles && !rep.full(); ++id) {
    if (topo.link_roles[id] != LinkRole::kShortcut) continue;
    const auto [u, v] = g.link_endpoints(id);
    const bool cw_ok = (u % p + 1) <= params.x && expected_shortcut_target(n, p, u) == v;
    bool ok = cw_ok;
    if (!ok && params.mirrored && u < n && v < n) {
      const NodeId mu = n - 1 - u;
      const NodeId mv = n - 1 - v;
      ok = (mu % p + 1) <= params.x && expected_shortcut_target(n, p, mu) == mv;
    }
    if (!ok) {
      const std::uint32_t l = u % p + 1;
      if (l > params.x && !params.mirrored) {
        rep.add(ViolationKind::kShortcutUnexpected, Severity::kError, u, id,
                "level-" + std::to_string(l) + " node owns a shortcut but x = " +
                    std::to_string(params.x));
      } else {
        rep.add(ViolationKind::kShortcutWrongTarget, Severity::kError, u, id,
                "shortcut lands on node " + std::to_string(v) +
                    " instead of the nearest lawful target");
      }
    }
  }
}

void check_dln_shortcut_law(const Topology& topo, Reporter& rep) {
  const std::uint32_t n = topo.num_nodes();
  const std::vector<std::uint64_t> nums = name_numbers(topo.name);
  if (nums.size() != 2 || nums[1] != n) {
    rep.add(ViolationKind::kNameMetadata, Severity::kWarning, kInvalidNode, kInvalidLink,
            "DLN name does not encode x and n; skipping the shortcut-span law");
    return;
  }
  const auto x = static_cast<std::uint32_t>(nums[0]);
  // Forward: every span floor(n/2^k), k = 1..x-2 (spans > 1), from every node.
  for (std::uint32_t k = 1; k + 2 <= x; ++k) {
    const std::uint32_t span = n >> k;
    if (span <= 1) break;
    for (NodeId i = 0; i < n && !rep.full(); ++i) {
      const NodeId j = static_cast<NodeId>((static_cast<std::uint64_t>(i) + span) % n);
      if (!topo.graph.has_link(i, j)) {
        rep.add(ViolationKind::kShortcutMissing, Severity::kError, i, kInvalidLink,
                "missing DLN span-" + std::to_string(span) + " shortcut to node " +
                    std::to_string(j));
      }
    }
  }
  // Converse: every shortcut-role link realizes one of the lawful spans.
  const std::size_t roles = std::min(topo.link_roles.size(), topo.graph.num_links());
  for (LinkId id = 0; id < roles && !rep.full(); ++id) {
    if (topo.link_roles[id] != LinkRole::kShortcut) continue;
    const auto [u, v] = topo.graph.link_endpoints(id);
    bool ok = false;
    for (std::uint32_t k = 1; k + 2 <= x && !ok; ++k) {
      const std::uint32_t span = n >> k;
      if (span <= 1) break;
      ok = ring_cw_distance(u, v, n) == span || ring_cw_distance(v, u, n) == span;
    }
    if (!ok) {
      rep.add(ViolationKind::kShortcutUnexpected, Severity::kError, u, id,
              "shortcut span is not floor(n/2^k) for any k in [1, x-2]");
    }
  }
}

// -------------------------------------------------------------------------
// Routing consistency
// -------------------------------------------------------------------------

/// Worst-case nodes the DSN routing-consistency sample must include: both
/// ends of the Extra-channel window [0, 2p] (so FINISH walks near node 0 ride
/// the Extra channels), a full-super-node crossing, and the last super node
/// (which may be incomplete, r = n mod p).
std::vector<NodeId> dsn_sampling_extremes(const DsnParams& params) {
  const std::uint32_t p = params.p;
  const std::uint32_t n = params.n;
  return {1, p, 2 * p - 1, 2 * p, 2 * p + 1, static_cast<NodeId>(n - p)};
}

template <typename Fn>
void for_pairs(const std::vector<std::pair<NodeId, NodeId>>& pairs, const Fn& fn) {
  for (const auto& [s, t] : pairs) fn(s, t);
}

void check_node_path(const Topology& topo, const std::vector<NodeId>& path, NodeId s,
                     NodeId t, const char* algo, Reporter& rep) {
  const std::uint32_t n = topo.num_nodes();
  if (path.empty() || path.front() != s || path.back() != t) {
    rep.add(ViolationKind::kRouteWrongEndpoint, Severity::kError, s, kInvalidLink,
            std::string(algo) + " path for (" + std::to_string(s) + ", " +
                std::to_string(t) + ") has wrong endpoints");
    return;
  }
  if (path.size() > static_cast<std::size_t>(n) + 1) {
    rep.add(ViolationKind::kRouteTooLong, Severity::kError, s, kInvalidLink,
            std::string(algo) + " path for (" + std::to_string(s) + ", " +
                std::to_string(t) + ") exceeds " + std::to_string(n) + " hops");
    return;
  }
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    if (!topo.graph.has_link(path[h], path[h + 1])) {
      rep.add(ViolationKind::kRouteNonNeighbor, Severity::kError, path[h], kInvalidLink,
              std::string(algo) + " hop " + std::to_string(path[h]) + " -> " +
                  std::to_string(path[h + 1]) + " is not a physical link");
      return;
    }
  }
}

void check_dsn_route(const Topology& topo, const Route& route, NodeId s, NodeId t,
                     Reporter& rep) {
  const std::uint32_t n = topo.num_nodes();
  if (route.src != s || route.dst != t ||
      (!route.hops.empty() &&
       (route.hops.front().from != s || route.hops.back().to != t))) {
    rep.add(ViolationKind::kRouteWrongEndpoint, Severity::kError, s, kInvalidLink,
            "DSN route for (" + std::to_string(s) + ", " + std::to_string(t) +
                ") has wrong endpoints");
    return;
  }
  if (route.used_fallback) {
    rep.add(ViolationKind::kRouteFallback, Severity::kError, s, kInvalidLink,
            "DSN route for (" + std::to_string(s) + ", " + std::to_string(t) +
                ") hit the defensive ring-walk fallback");
  }
  if (route.length() > n) {
    rep.add(ViolationKind::kRouteTooLong, Severity::kError, s, kInvalidLink,
            "DSN route for (" + std::to_string(s) + ", " + std::to_string(t) +
                ") exceeds " + std::to_string(n) + " hops");
    return;
  }
  RoutePhase last_phase = RoutePhase::kPreWork;
  NodeId at = s;
  for (const RouteHop& hop : route.hops) {
    if (hop.from != at) {
      rep.add(ViolationKind::kRouteWrongEndpoint, Severity::kError, hop.from, kInvalidLink,
              "DSN route hop chain is discontinuous at node " + std::to_string(hop.from));
      return;
    }
    if (!topo.graph.has_link(hop.from, hop.to)) {
      rep.add(ViolationKind::kRouteNonNeighbor, Severity::kError, hop.from, kInvalidLink,
              "DSN route hop " + std::to_string(hop.from) + " -> " +
                  std::to_string(hop.to) + " is not a physical link");
      return;
    }
    if (hop.phase < last_phase) {
      rep.add(ViolationKind::kRoutePhaseOrder, Severity::kError, hop.from, kInvalidLink,
              "route phase regressed (PRE-WORK/MAIN/FINISH must be monotone)");
      return;
    }
    last_phase = hop.phase;
    at = hop.to;
  }
}

void check_routing_consistency(const Topology& topo, const std::optional<DsnParams>& dsn,
                               const UpDownRouting* updown, const ValidatorOptions& opts,
                               Reporter& rep) {
  const std::uint32_t n = topo.num_nodes();
  const std::vector<NodeId> extremes =
      dsn ? dsn_sampling_extremes(*dsn) : std::vector<NodeId>{};
  const std::vector<std::pair<NodeId, NodeId>> pairs =
      sampled_routing_pairs(n, opts.exhaustive_routing_nodes, extremes);

  // Generic escape-layer check: up*/down* must produce legal neighbor walks on
  // any connected topology.
  if (updown != nullptr) {
    for_pairs(pairs, [&](NodeId s, NodeId t) {
      if (rep.full()) return;
      const NodeId next = updown->next_hop(s, t);
      if (next == kInvalidNode || !topo.graph.has_link(s, next)) {
        rep.add(ViolationKind::kRouteNonNeighbor, Severity::kError, s, kInvalidLink,
                "up*/down* next hop for (" + std::to_string(s) + ", " +
                    std::to_string(t) + ") is not a neighbor");
        return;
      }
      check_node_path(topo, updown->route(s, t), s, t, "up*/down*", rep);
    });
  }

  switch (topo.kind) {
    case TopologyKind::kDsn:
    case TopologyKind::kDsnE:
    case TopologyKind::kDsnBidir: {
      if (!dsn) break;
      const Dsn base(dsn->n, dsn->x);
      const DsnRouter router(base);
      for_pairs(pairs, [&](NodeId s, NodeId t) {
        if (rep.full()) return;
        check_dsn_route(topo, router.route(s, t), s, t, rep);
      });
      break;
    }
    case TopologyKind::kDsnD: {
      if (!dsn || dsn->xd < 1) break;
      const DsnD d(dsn->n, dsn->xd);
      for_pairs(pairs, [&](NodeId s, NodeId t) {
        if (rep.full()) return;
        check_dsn_route(topo, route_dsn_d(d, s, t), s, t, rep);
      });
      break;
    }
    case TopologyKind::kTorus2D:
    case TopologyKind::kTorus3D: {
      for_pairs(pairs, [&](NodeId s, NodeId t) {
        if (rep.full()) return;
        const NodeId next = torus_dor_next_hop(topo, s, t);
        if (next == kInvalidNode || !topo.graph.has_link(s, next)) {
          rep.add(ViolationKind::kRouteNonNeighbor, Severity::kError, s, kInvalidLink,
                  "DOR next hop for (" + std::to_string(s) + ", " + std::to_string(t) +
                      ") is not a neighbor");
          return;
        }
        check_node_path(topo, route_torus_dor(topo, s, t), s, t, "DOR", rep);
      });
      break;
    }
    case TopologyKind::kKleinberg: {
      if (topo.dims.size() != 2 || topo.dims[0] != topo.dims[1] ||
          static_cast<std::uint64_t>(topo.dims[0]) * topo.dims[1] != n)
        break;  // Watts-Strogatz reuses this kind without grid dims
      for_pairs(pairs, [&](NodeId s, NodeId t) {
        if (rep.full()) return;
        check_node_path(topo, route_greedy_grid(topo, s, t), s, t, "greedy", rep);
      });
      break;
    }
    default:
      break;
  }
}

void check_cdg_acyclicity(const Topology& topo, const std::optional<DsnParams>& dsn,
                          const UpDownRouting* updown, Reporter& rep) {
  if (updown != nullptr) {
    const ChannelDependencyGraph cdg = build_updown_cdg(*updown);
    if (!cdg.is_acyclic()) {
      rep.add(ViolationKind::kCdgCyclic, Severity::kError, kInvalidNode, kInvalidLink,
              "up*/down* channel dependency graph has a directed cycle (" +
                  std::to_string(cdg.num_channels()) + " channels)\n" +
                  analyze::render_cycle_witness(topo, cdg.find_shortest_cycle(),
                                                analyze::ChannelScheme::kBasic));
    }
  }
  if (topo.kind == TopologyKind::kDsnE && dsn) {
    // Theorem 3: the extended routing over Up/Extra channels (physical links
    // on DSN-E, virtual channels on DSN-V) must be deadlock-free.
    const Dsn base(dsn->n, dsn->x);
    const ChannelDependencyGraph cdg = build_dsn_cdg(base, /*extended=*/true);
    if (!cdg.is_acyclic()) {
      rep.add(ViolationKind::kCdgCyclic, Severity::kError, kInvalidNode, kInvalidLink,
              "extended DSN routing CDG (DSN-E/DSN-V, Theorem 3) has a directed "
              "cycle\n" +
                  analyze::render_cycle_witness(topo, cdg.find_shortest_cycle(),
                                                analyze::ChannelScheme::kExtended));
    }
  }
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// The opt-in check_load family: run the whole-network route analyzer with
/// the topology's native routing family, turn its witnesses into violations,
/// and attach the static channel-load statistics to the report as a note.
void check_route_load(const Topology& topo, const ValidatorOptions& opts,
                      Reporter& rep, ValidationReport& report) {
  analyze::RouteAnalysis ra;
  try {
    ra = analyze::analyze_topology_routes(topo, analyze::default_family(topo.kind));
  } catch (const std::exception& e) {
    report.notes.push_back(std::string("route/load analysis skipped: ") + e.what());
    return;
  }
  const auto pair_prefix = [](const analyze::RouteWitness& w) {
    return "route (" + std::to_string(w.src) + ", " + std::to_string(w.dst) + "): ";
  };
  for (const analyze::RouteWitness& w : ra.loop_witnesses) {
    rep.add(ViolationKind::kRouteLoop, Severity::kError, w.src, kInvalidLink,
            pair_prefix(w) + w.reason);
  }
  for (const analyze::RouteWitness& w : ra.endpoint_witnesses) {
    rep.add(ViolationKind::kRouteWrongEndpoint, Severity::kError, w.src, kInvalidLink,
            pair_prefix(w) + w.reason);
  }
  for (const analyze::RouteWitness& w : ra.bound_witnesses) {
    rep.add(ViolationKind::kRouteBoundExceeded, Severity::kError, w.src, kInvalidLink,
            pair_prefix(w) + w.reason + " (" + ra.hop_bound_law + ")");
  }
  if (opts.max_normalized_load > 0.0 &&
      ra.load.max_normalized > opts.max_normalized_load) {
    rep.add(ViolationKind::kChannelOverload, Severity::kError, ra.load.max_channel.from,
            kInvalidLink,
            "channel " + analyze::render_channel(topo, ra.load.max_channel, ra.scheme) +
                " carries normalized load " + format_double(ra.load.max_normalized) +
                " > limit " + format_double(opts.max_normalized_load));
  }
  report.notes.push_back(
      "static channel load (" + std::string(analyze::to_string(ra.family)) +
      ", all " + std::to_string(ra.pairs) + " pairs): max " +
      std::to_string(ra.load.max_load) + ", mean " + format_double(ra.load.mean_load) +
      ", gini " + format_double(ra.load.gini) + ", throughput bound " +
      format_double(ra.load.throughput_bound));
}

}  // namespace

ValidatorOptions structural_options() {
  ValidatorOptions opts;
  opts.check_routing = false;
  opts.check_cdg = false;
  return opts;
}

Validator::Validator(ValidatorOptions options) : options_(options) {}

ValidationReport Validator::validate(const Topology& topo) const {
  ValidationReport report;
  report.topology = topo.name.empty() ? to_string(topo.kind) : topo.name;
  Reporter rep(report, options_.max_violations);
  const std::uint32_t n = topo.num_nodes();

  check_representation(topo, report, rep, options_.max_violations);
  if (n == 0) return report;

  std::optional<DsnParams> dsn;
  if (is_dsn_family(topo.kind)) {
    dsn = parse_dsn_params(topo);
    if (!dsn) {
      rep.add(ViolationKind::kNameMetadata, Severity::kWarning, kInvalidNode,
              kInvalidLink,
              "DSN name/kind does not encode (n, x); shortcut-law, degree and "
              "routing checks skipped");
    }
  }

  ++report.checks_run;
  if (is_ring_based(topo.kind)) check_ring_completeness(topo, rep);
  if (topo.kind == TopologyKind::kTorus2D || topo.kind == TopologyKind::kTorus3D)
    check_grid_completeness(topo, /*wraparound=*/true, rep);
  if (topo.kind == TopologyKind::kKleinberg && topo.dims.size() == 2)
    check_grid_completeness(topo, /*wraparound=*/false, rep);

  ++report.checks_run;
  check_degree_bounds(topo, dsn, rep);

  ++report.checks_run;
  if (dsn) check_dsn_shortcut_law(topo, *dsn, rep);
  if (topo.kind == TopologyKind::kDln) check_dln_shortcut_law(topo, rep);

  bool connected = true;
  if (options_.check_connectivity) {
    ++report.checks_run;
    connected = is_connected(topo.graph);
    if (!connected) {
      // Random models (Watts-Strogatz rewiring, random regular) can
      // legitimately disconnect; everything else has a deterministic spine.
      const Severity sev = topo.kind == TopologyKind::kKleinberg ||
                                   topo.kind == TopologyKind::kRandomRegular
                               ? Severity::kWarning
                               : Severity::kError;
      rep.add(ViolationKind::kDisconnected, sev, kInvalidNode, kInvalidLink,
              "graph is not connected");
    }
  }

  // The deep checks route over the graph; skip them when the representation
  // itself is broken or the graph is disconnected.
  const bool representable = report.ok();
  std::optional<UpDownRouting> updown;
  const bool want_updown = (options_.check_routing || options_.check_cdg) &&
                           connected && representable && n >= 2 &&
                           n <= options_.max_cdg_nodes;
  if (want_updown) updown.emplace(topo.graph, 0);

  if (options_.check_routing && connected && representable) {
    ++report.checks_run;
    check_routing_consistency(topo, dsn, updown ? &*updown : nullptr, options_, rep);
  }
  if (options_.check_cdg && connected && representable && n <= options_.max_cdg_nodes) {
    ++report.checks_run;
    check_cdg_acyclicity(topo, dsn, updown ? &*updown : nullptr, rep);
  }
  if (options_.check_load && connected && representable && n >= 2 &&
      n <= options_.max_cdg_nodes) {
    ++report.checks_run;
    check_route_load(topo, options_, rep, report);
  }
  return report;
}

std::vector<std::pair<NodeId, NodeId>> sampled_routing_pairs(
    NodeId n, std::uint32_t exhaustive, std::span<const NodeId> extra_nodes) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (n < 2) return pairs;
  if (n <= exhaustive) {
    pairs.reserve(static_cast<std::size_t>(n) * (n - 1));
    for (NodeId s = 0; s < n; ++s)
      for (NodeId t = 0; t < n; ++t)
        if (s != t) pairs.emplace_back(s, t);
    return pairs;
  }
  // Strided node sample, forced to contain both extremes (so (0, n-1) is
  // always visited) and every in-range caller-supplied worst-case node.
  std::vector<NodeId> nodes;
  const NodeId stride = n / 48 + 1;
  for (NodeId s = 0; s < n; s += stride) nodes.push_back(s);
  nodes.push_back(0);
  nodes.push_back(n - 1);
  for (const NodeId e : extra_nodes)
    if (e < n) nodes.push_back(e);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  pairs.reserve(nodes.size() * (nodes.size() + 2));
  for (const NodeId s : nodes) {
    for (const NodeId t : nodes)
      if (s != t) pairs.emplace_back(s, t);
    pairs.emplace_back(s, ring_succ(s, n));  // exercise the local-walk extremes
    pairs.emplace_back(s, ring_pred(s, n));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

ValidationReport validate_topology(const Topology& topo, ValidatorOptions options) {
  return Validator(options).validate(topo);
}

void check_raw_graph(NodeId num_nodes,
                     const std::vector<std::pair<NodeId, NodeId>>& links,
                     const std::vector<std::vector<AdjHalf>>& adjacency,
                     ValidationReport& report, std::size_t max_violations) {
  Reporter rep(report, max_violations);
  ++report.checks_run;

  std::vector<bool> endpoints_ok(links.size(), true);
  for (LinkId id = 0; id < links.size() && !rep.full(); ++id) {
    const auto [u, v] = links[id];
    if (u >= num_nodes || v >= num_nodes) {
      endpoints_ok[id] = false;
      rep.add(ViolationKind::kNodeIdRange, Severity::kError, kInvalidNode, id,
              "link endpoint out of range");
      continue;
    }
    if (u == v) {
      rep.add(ViolationKind::kSelfLoop, Severity::kError, u, id, "self loop");
    }
  }
  if (adjacency.size() != num_nodes) {
    rep.add(ViolationKind::kNodeIdRange, Severity::kError, kInvalidNode, kInvalidLink,
            "adjacency table has " + std::to_string(adjacency.size()) +
                " rows for " + std::to_string(num_nodes) + " nodes");
    return;
  }

  // Every link must contribute exactly one adjacency half at each endpoint,
  // and every half must reference a link it is actually an endpoint of.
  std::vector<std::uint32_t> half_count(links.size(), 0);
  for (NodeId u = 0; u < num_nodes && !rep.full(); ++u) {
    for (const AdjHalf& h : adjacency[u]) {
      if (h.to >= num_nodes) {
        rep.add(ViolationKind::kNodeIdRange, Severity::kError, u, kInvalidLink,
                "adjacency target out of range");
        continue;
      }
      if (h.link >= links.size()) {
        rep.add(ViolationKind::kLinkIdBijection, Severity::kError, u, kInvalidLink,
                "adjacency half references nonexistent link " + std::to_string(h.link));
        continue;
      }
      const auto [a, b] = links[h.link];
      if (!((a == u && b == h.to) || (a == h.to && b == u))) {
        rep.add(ViolationKind::kLinkIdBijection, Severity::kError, u, h.link,
                "adjacency half (" + std::to_string(u) + " -> " + std::to_string(h.to) +
                    ") is miswired to link (" + std::to_string(a) + ", " +
                    std::to_string(b) + ")");
        continue;
      }
      ++half_count[h.link];
    }
  }
  for (LinkId id = 0; id < links.size() && !rep.full(); ++id) {
    if (!endpoints_ok[id]) continue;
    if (half_count[id] != 2) {
      rep.add(ViolationKind::kAdjacencySymmetry, Severity::kError, links[id].first, id,
              "link appears in " + std::to_string(half_count[id]) +
                  " adjacency halves, expected 2");
    }
  }
}

namespace {

thread_local bool t_in_validation_hook = false;

void validating_generation_hook(const Topology& topo) {
  if (t_in_validation_hook) return;  // validator-internal reconstructions
  const char* env = std::getenv("DSN_VALIDATE");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "0") return;
  t_in_validation_hook = true;
  struct Restore {
    ~Restore() { t_in_validation_hook = false; }
  } restore;
  const ValidatorOptions opts =
      std::string_view(env) == "full" ? ValidatorOptions{} : structural_options();
  const ValidationReport report = validate_topology(topo, opts);
  if (!report.ok()) {
    throw InternalError("DSN_VALIDATE: generated topology failed validation\n" +
                        report.summary());
  }
}

}  // namespace

dsn::TopologyGeneratedHook install_generation_hook() {
  return set_topology_generated_hook(&validating_generation_hook);
}

}  // namespace dsn::check
