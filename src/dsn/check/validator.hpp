// The invariant checker (the "tentpole" of the correctness-tooling layer).
//
// Validator runs a battery of structural checks over any Topology:
//  - graph representation: adjacency symmetry, link-id bijection, self loops,
//    id ranges, link_roles parallel-array consistency, per-kind role legality;
//  - connectivity;
//  - ring/grid completeness for ring- and lattice-based kinds;
//  - degree bounds (e.g. average degree <= 4 for basic DSN-x-n — Theorem 1);
//  - the DSN shortcut law (§IV-A): every level-l <= x node's shortcut lands on
//    the *nearest clockwise* level-(l+1) node at ring distance >= floor(n/2^l),
//    re-derived here from the paper's definition, independent of the generator;
//  - CDG acyclicity for the deadlock-free variants (DSN-E physical links /
//    DSN-V virtual channels, and up*/down* as the generic escape layer);
//  - routing consistency: every hop produced by the DSN custom routing,
//    torus DOR, grid greedy and up*/down* is a physical neighbor, routes
//    start/end at the right nodes and terminate within a hop bound.
//
// Violations are *reported*, not thrown, so one run surfaces every problem.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dsn/check/violation.hpp"
#include "dsn/graph/graph.hpp"
#include "dsn/topology/hooks.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn::check {

struct ValidatorOptions {
  bool check_connectivity = true;
  /// Routing-consistency scans (DSN custom routing, DOR, greedy, up*/down*).
  bool check_routing = true;
  /// Channel-dependency-graph acyclicity (DSN-E/DSN-V, up*/down*).
  bool check_cdg = true;
  /// Opt-in: run the whole-network route analyzer (dsn::analyze) over all
  /// ordered pairs — route loops, analytic hop bounds, static channel load —
  /// and attach the load statistics to the report as a note.
  bool check_load = false;
  /// With check_load: flag kChannelOverload when the normalized maximum
  /// channel load (max_load / (n-1)) exceeds this limit. 0 disables the
  /// threshold; the statistics note is emitted either way.
  double max_normalized_load = 0.0;
  /// All ordered pairs are routed when n <= this; above it, sources and
  /// destinations are sampled with a fixed stride (still deterministic).
  std::uint32_t exhaustive_routing_nodes = 320;
  /// CDG construction and the check_load analysis are all-pairs; skip them
  /// entirely above this size.
  std::uint32_t max_cdg_nodes = 1024;
  /// Stop recording after this many violations (a corrupt topology can
  /// otherwise produce O(n) repeats of the same defect).
  std::size_t max_violations = 256;
};

/// The deterministic ordered (s, t) pairs the routing-consistency checks
/// visit: all n(n-1) of them when n <= exhaustive, otherwise a strided sample
/// that always contains 0 and n-1 (so the extreme pair (0, n-1) is exercised)
/// plus every in-range node of `extra_nodes` (as both source and target) and
/// each sampled node's ring successor/predecessor as targets. Sorted and
/// duplicate-free.
std::vector<std::pair<NodeId, NodeId>> sampled_routing_pairs(
    NodeId n, std::uint32_t exhaustive, std::span<const NodeId> extra_nodes = {});

/// Structural lint options: representation + topology-shape checks only.
/// This is what the DSN_VALIDATE=1 generation hook runs (O(V + E)-ish).
ValidatorOptions structural_options();

class Validator {
 public:
  explicit Validator(ValidatorOptions options = {});

  /// Run every applicable check family; never throws on a bad topology.
  ValidationReport validate(const Topology& topo) const;

  const ValidatorOptions& options() const { return options_; }

 private:
  ValidatorOptions options_;
};

/// One-shot convenience wrapper.
ValidationReport validate_topology(const Topology& topo, ValidatorOptions options = {});

/// Graph-representation checks over *raw* adjacency/link arrays. Exposed so
/// the checker's own property tests can inject corruptions (asymmetric
/// adjacency, miswired link ids) that the Graph API makes unrepresentable.
void check_raw_graph(NodeId num_nodes,
                     const std::vector<std::pair<NodeId, NodeId>>& links,
                     const std::vector<std::vector<AdjHalf>>& adjacency,
                     ValidationReport& report,
                     std::size_t max_violations = 256);

/// Install a topology-generation hook (see dsn/topology/hooks.hpp) that runs
/// the structural checks on every freshly generated topology and throws
/// dsn::InternalError when any error-severity violation is found. The hook is
/// a no-op unless the DSN_VALIDATE environment variable is set to a non-empty,
/// non-"0" value; DSN_VALIDATE=full additionally enables the routing and CDG
/// check families. Returns the previously installed hook.
dsn::TopologyGeneratedHook install_generation_hook();

}  // namespace dsn::check
