// dsn-slint: deterministic — every random draw happens sequentially on the
// calling thread from a seeded generator; parallel work (estimator sweeps)
// merges in fixed order, so the Pareto front is byte-identical for any
// DSN_THREADS setting (pinned by determinism.opt and the BENCH_opt CI gate).
//
// Shortcut-placement optimizer (paper §VI): simulated annealing over
// double-edge swaps of the LinkRole::kShortcut links, exploring the
// (cable length, ASPL, 1 / throughput-bound) trade-off at *exactly* the
// seed topology's degree sequence — swaps preserve degrees by construction
// (see MutableShortcutSet). The estimator makes each proposal cheap: only
// sources whose BFS trees touch the swapped links are re-swept
// (SampledPathEstimator), and cable deltas are exact O(1) lookups under the
// machine-room layout model. Non-dominated placements accumulate in a
// ParetoArchive whose 2-D staircase is the committed-bench artifact.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dsn/common/json.hpp"
#include "dsn/graph/estimator.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/opt/pareto.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn::opt {

struct OptimizerConfig {
  std::uint64_t seed = 1;
  /// Independent annealing passes; each restarts from the seed placement
  /// with its own scalarization weights and RNG stream, and all passes feed
  /// one shared archive (multi-start beats one long chain on this landscape).
  std::uint32_t passes = 3;
  std::uint32_t iterations = 2000;  ///< proposals per pass
  std::uint32_t plateau = 100;      ///< proposals per temperature step
  double initial_temperature = 0.02;
  double cooling = 0.85;  ///< geometric factor per plateau
  double min_temperature = 1e-4;
  /// Fraction of proposals drawn as *local partner exchanges*: pick two
  /// shortcuts whose endpoints are adjacent in sorted-endpoint order and
  /// exchange their far partners, which approximately preserves both spans.
  /// Local moves barely perturb the sampled BFS trees (the estimator's
  /// incremental path), and they are the cable fine-tuning moves; the
  /// remaining fraction are global random swaps that explore ASPL. A truly
  /// random swap rewires long-range structure and touches most trees, so an
  /// all-global mix degenerates to full re-sweeps every proposal.
  double local_bias = 0.75;
  /// Neighborhood half-width (in sorted-endpoint positions) for local moves.
  /// Small is better for the estimator (tighter moves perturb fewer trees)
  /// but 1 wastes ~half the draws on no-op self-exchanges — nodes carry ~2
  /// shortcut endpoints, so the adjacent entry is often the same node.
  std::uint32_t local_window = 4;
  EstimatorConfig estimator;
  MachineRoomConfig room;
};

struct OptimizerResult {
  std::string topology;
  NodeId n = 0;
  std::size_t links = 0;
  std::size_t shortcuts = 0;
  std::size_t degree_min = 0;
  std::size_t degree_max = 0;
  double degree_avg = 0.0;
  std::uint32_t sample_sources = 0;

  OptPoint seed_point;          ///< the unmodified placement
  std::vector<OptPoint> front;  ///< cable-vs-ASPL staircase (seed included)
  std::size_t archive_size = 0;

  std::uint64_t proposals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t invalid = 0;     ///< rejected by swap validity, pre-estimator
  std::uint64_t resweeps = 0;    ///< single-source BFS re-sweeps
  std::uint64_t full_sweeps = 0; ///< drift fallbacks to a full sampled sweep

  /// True when some placement strictly beats the seed on cable at ASPL no
  /// worse than the seed's — the "cable-per-ASPL at equal degree" headline.
  bool beats_seed = false;
  double best_cable_m_at_seed_aspl = 0.0;  ///< min cable with aspl <= seed's
  double cable_saved_pct = 0.0;            ///< vs seed_point.cable_m
  double best_aspl = 0.0;                  ///< min ASPL anywhere in the archive
  /// Shortcut endpoint pairs of the placement behind
  /// best_cable_m_at_seed_aspl (the seed's own shortcuts when nothing beat it).
  std::vector<std::pair<NodeId, NodeId>> best_shortcuts;
};

/// Anneal `topo`'s shortcut placement. Requires >= 2 shortcut links and a
/// connected non-shortcut skeleton (see MutableShortcutSet). Deterministic in
/// (topo, cfg) for any thread count.
OptimizerResult optimize_shortcuts(const Topology& topo, const OptimizerConfig& cfg);

/// Stable machine-readable form (dsn-lint optimize --json, micro_opt rows).
Json optimizer_result_to_json(const OptimizerResult& r);

}  // namespace dsn::opt
