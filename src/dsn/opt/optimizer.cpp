// dsn-slint: deterministic
#include "dsn/opt/optimizer.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "dsn/common/error.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/obs/obs.hpp"
#include "dsn/topology/shortcut_set.hpp"

namespace dsn::opt {

#if DSN_OBS
namespace {

struct OptMetrics {
  obs::MetricId proposals = obs::MetricsRegistry::global().counter("dsn.opt.proposals");
  obs::MetricId accepts = obs::MetricsRegistry::global().counter("dsn.opt.accepts");
  obs::MetricId resweeps = obs::MetricsRegistry::global().counter("dsn.opt.resweeps");
  obs::MetricId full_sweeps =
      obs::MetricsRegistry::global().counter("dsn.opt.full_sweeps");
  obs::MetricId affected =
      obs::MetricsRegistry::global().gauge("dsn.opt.affected_sources");
  obs::MetricId plateau_ns = obs::MetricsRegistry::global().counter("dsn.opt.plateau_ns");
  obs::MetricId plateaus = obs::MetricsRegistry::global().counter("dsn.opt.plateaus");

  static const OptMetrics& get() {
    static OptMetrics metrics;
    return metrics;
  }
};

}  // namespace
#endif  // DSN_OBS

namespace {

/// Scalarization weight sets (aspl, cable, load), cycled per pass: an
/// ASPL-leaning pass, a cable-leaning pass, and a balanced pass each walk a
/// different region of the front; the archive keeps whatever any of them find.
constexpr std::array<std::array<double, 3>, 3> kPassWeights{{
    {1.0, 0.3, 0.1},
    {0.3, 1.0, 0.1},
    {0.7, 0.7, 0.3},
}};

}  // namespace

OptimizerResult optimize_shortcuts(const Topology& topo, const OptimizerConfig& cfg) {
  DSN_REQUIRE(cfg.iterations > 0 && cfg.passes > 0, "passes/iterations must be positive");
  DSN_REQUIRE(cfg.plateau > 0, "plateau must be positive");

  OptimizerResult result;
  result.topology = topo.name;
  result.n = topo.graph.num_nodes();
  result.links = topo.graph.num_links();
  const DegreeStats degrees = compute_degree_stats(topo.graph);
  result.degree_min = degrees.min_degree;
  result.degree_max = degrees.max_degree;
  result.degree_avg = degrees.avg_degree;

  const FloorLayout layout(topo, cfg.room, PlacementStrategy::kLinear);
  const auto pair_cable = [&layout](const std::pair<NodeId, NodeId>& e) {
    return layout.cable_length_m(e.first, e.second);
  };
  double seed_cable = 0.0;
  for (LinkId l = 0; l < result.links; ++l) {
    const auto [u, v] = topo.graph.link_endpoints(l);
    seed_cable += layout.cable_length_m(u, v);
  }

  // Seed estimate (one extra full sweep; per-pass estimators redo it, which
  // is noise next to passes * iterations proposals).
  std::uint64_t seed_reachable = 0;
  {
    const MutableShortcutSet seed_view(topo);
    result.shortcuts = seed_view.num_shortcuts();
    const CsrView seed_csr = seed_view.snapshot();
    const SampledPathEstimator seed_est(seed_csr, cfg.estimator);
    result.sample_sources = static_cast<std::uint32_t>(seed_est.sources().size());
    const EstimateView& sv = seed_est.current();
    seed_reachable = sv.reachable_pairs;
    result.seed_point = OptPoint{seed_cable, sv.aspl, sv.max_normalized_load,
                                 sv.throughput_bound, 0, 0};
    result.best_shortcuts.assign(seed_view.shortcuts().begin(),
                                 seed_view.shortcuts().end());
  }

  ParetoArchive archive;
  archive.insert(result.seed_point);
  result.best_cable_m_at_seed_aspl = result.seed_point.cable_m;
  result.best_aspl = result.seed_point.aspl;

  const double aspl_scale = std::max(result.seed_point.aspl, 1e-12);
  const double cable_scale = std::max(result.seed_point.cable_m, 1e-12);
  const double load_scale = std::max(result.seed_point.max_normalized_load, 1e-12);

  SplitMix64 seed_stream(cfg.seed);
  for (std::uint32_t pass = 0; pass < cfg.passes; ++pass) {
    const std::uint64_t pass_seed = seed_stream.next();
    Rng rng(pass_seed);
    const std::array<double, 3>& w = kPassWeights[pass % kPassWeights.size()];
    const auto objective = [&](double cable, double aspl, double load) {
      return w[0] * aspl / aspl_scale + w[1] * cable / cable_scale +
             w[2] * load / load_scale;
    };

    MutableShortcutSet view(topo);
    CsrView cur = view.snapshot();
    SampledPathEstimator est(cur, cfg.estimator);
    double cable = seed_cable;
    const std::size_t num_slots = view.num_shortcuts();
    double temperature = cfg.initial_temperature;

    // Sorted endpoint index for local partner exchanges: entries
    // (endpoint, slot * 2 + side) ordered by endpoint id. Under the linear
    // placement, adjacency in this order is adjacency in cable space, so an
    // exchange between neighboring entries approximately preserves both
    // shortcut spans — the move class the incremental estimator is built for.
    std::vector<std::pair<NodeId, std::uint32_t>> endpoint_index;
    endpoint_index.reserve(2 * num_slots);
    for (std::uint32_t s = 0; s < num_slots; ++s) {
      endpoint_index.emplace_back(view.shortcut(s).first, 2 * s);
      endpoint_index.emplace_back(view.shortcut(s).second, 2 * s + 1);
    }
    std::sort(endpoint_index.begin(), endpoint_index.end());
    const auto index_remove = [&endpoint_index](NodeId x, std::uint32_t code) {
      const auto it = std::lower_bound(endpoint_index.begin(), endpoint_index.end(),
                                       std::pair<NodeId, std::uint32_t>{x, code});
      DSN_REQUIRE(it != endpoint_index.end() && it->first == x && it->second == code,
                  "endpoint index out of sync");
      endpoint_index.erase(it);
    };
    const auto index_insert = [&endpoint_index](NodeId x, std::uint32_t code) {
      endpoint_index.insert(
          std::lower_bound(endpoint_index.begin(), endpoint_index.end(),
                           std::pair<NodeId, std::uint32_t>{x, code}),
          {x, code});
    };
    const std::uint64_t window =
        std::min<std::uint64_t>(std::max<std::uint32_t>(cfg.local_window, 1),
                                2 * num_slots - 1);

    for (std::uint32_t start = 0; start < cfg.iterations; start += cfg.plateau) {
      DSN_OBS_TIMER(OptMetrics::get().plateau_ns, OptMetrics::get().plateaus);
      const std::uint32_t stop = std::min(cfg.iterations, start + cfg.plateau);
      for (std::uint32_t iter = start; iter < stop; ++iter) {
        ++result.proposals;
        DSN_OBS_ADD(OptMetrics::get().proposals, 1);

        std::size_t i;
        std::size_t j;
        bool cross;
        if (rng.next_double() < cfg.local_bias) {
          // Local partner exchange: two endpoints adjacent in sorted order
          // swap partners. Matching sides (first/first or second/second)
          // maps to a cross swap, mixed sides to a straight swap — either
          // way each near endpoint inherits the other's far partner.
          const std::size_t e =
              static_cast<std::size_t>(rng.next_below(endpoint_index.size()));
          const std::uint64_t off = 1 + rng.next_below(window);
          const bool fwd = (rng.next() & 1) != 0;
          const std::size_t e2 = static_cast<std::size_t>(
              (e + (fwd ? off : endpoint_index.size() - off)) %
              endpoint_index.size());
          const std::uint32_t ci = endpoint_index[e].second;
          const std::uint32_t cj = endpoint_index[e2].second;
          i = ci >> 1;
          j = cj >> 1;
          if (i == j) {
            ++result.invalid;
            continue;
          }
          cross = (ci & 1) == (cj & 1);
        } else {
          i = static_cast<std::size_t>(rng.next_below(num_slots));
          j = static_cast<std::size_t>(rng.next_below(num_slots - 1));
          if (j >= i) ++j;
          cross = (rng.next() & 1) != 0;
        }
        const std::pair<NodeId, NodeId> old_i = view.shortcut(i);
        const std::pair<NodeId, NodeId> old_j = view.shortcut(j);
        if (!view.try_swap(i, j, cross)) {
          ++result.invalid;
          continue;
        }
        const std::pair<NodeId, NodeId> new_i = view.shortcut(i);
        const std::pair<NodeId, NodeId> new_j = view.shortcut(j);
        const double cand_cable = cable + pair_cable(new_i) + pair_cable(new_j) -
                                  pair_cable(old_i) - pair_cable(old_j);

        const std::array<std::pair<NodeId, NodeId>, 2> removed{old_i, old_j};
        const std::array<std::pair<NodeId, NodeId>, 2> added{new_i, new_j};
        const std::size_t affected = est.count_affected(cur, removed, added);
        DSN_OBS_GAUGE_SET(OptMetrics::get().affected,
                          static_cast<std::uint64_t>(affected));

        CsrView next;
        EstimateView cand;
        if (affected == 0) {
          // The swap touches no sampled tree: paths/loads are unchanged and
          // the candidate differs in cable only — no snapshot, no sweep.
          cand = est.current();
        } else {
          next = view.snapshot();
          cand = est.evaluate(cur, next);
        }

        // Never walk through placements the sampled sweep cannot certify as
        // reachable-equivalent to the seed (swaps cannot disconnect the
        // fixed skeleton, but they can orphan nothing — this guards the
        // estimate itself).
        bool accept = false;
        if (cand.reachable_pairs >= seed_reachable) {
          const double cur_obj = objective(cable, est.current().aspl,
                                           est.current().max_normalized_load);
          const double cand_obj =
              objective(cand_cable, cand.aspl, cand.max_normalized_load);
          const double delta = cand_obj - cur_obj;
          accept = delta <= 0.0 ||
                   rng.next_double() < std::exp(-delta / temperature);
        }
        if (!accept) {
          view.undo_last();
          est.discard();
          continue;
        }

        est.commit();
        cable = cand_cable;
        cur = affected == 0 ? view.snapshot() : std::move(next);
        index_remove(old_i.first, static_cast<std::uint32_t>(2 * i));
        index_remove(old_i.second, static_cast<std::uint32_t>(2 * i + 1));
        index_remove(old_j.first, static_cast<std::uint32_t>(2 * j));
        index_remove(old_j.second, static_cast<std::uint32_t>(2 * j + 1));
        index_insert(new_i.first, static_cast<std::uint32_t>(2 * i));
        index_insert(new_i.second, static_cast<std::uint32_t>(2 * i + 1));
        index_insert(new_j.first, static_cast<std::uint32_t>(2 * j));
        index_insert(new_j.second, static_cast<std::uint32_t>(2 * j + 1));
        ++result.accepted;
        DSN_OBS_ADD(OptMetrics::get().accepts, 1);

        archive.insert(OptPoint{cable, cand.aspl, cand.max_normalized_load,
                                cand.throughput_bound, pass, iter + 1});
        result.best_aspl = std::min(result.best_aspl, cand.aspl);
        if (cand.aspl <= result.seed_point.aspl &&
            cable < result.best_cable_m_at_seed_aspl) {
          result.best_cable_m_at_seed_aspl = cable;
          result.best_shortcuts.assign(view.shortcuts().begin(),
                                       view.shortcuts().end());
        }
      }
      temperature = std::max(cfg.min_temperature, temperature * cfg.cooling);
    }

    result.resweeps += est.resweeps();
    result.full_sweeps += est.full_sweeps();
    DSN_OBS_ADD(OptMetrics::get().resweeps, est.resweeps());
    DSN_OBS_ADD(OptMetrics::get().full_sweeps, est.full_sweeps());
  }

  result.front = archive.front_2d();
  result.archive_size = archive.size();
  result.beats_seed =
      result.best_cable_m_at_seed_aspl < result.seed_point.cable_m;
  if (result.seed_point.cable_m > 0.0) {
    result.cable_saved_pct =
        100.0 * (result.seed_point.cable_m - result.best_cable_m_at_seed_aspl) /
        result.seed_point.cable_m;
  }
  return result;
}

namespace {

Json point_json(const OptPoint& p) {
  Json j = Json::object();
  j.set("cable_m", p.cable_m);
  j.set("aspl", p.aspl);
  j.set("max_normalized_load", p.max_normalized_load);
  j.set("throughput_bound", p.throughput_bound);
  j.set("pass", static_cast<std::uint64_t>(p.pass));
  j.set("iteration", static_cast<std::uint64_t>(p.iteration));
  return j;
}

}  // namespace

Json optimizer_result_to_json(const OptimizerResult& r) {
  Json j = Json::object();
  j.set("topology", r.topology);
  j.set("n", static_cast<std::uint64_t>(r.n));
  j.set("links", static_cast<std::uint64_t>(r.links));
  j.set("shortcuts", static_cast<std::uint64_t>(r.shortcuts));
  j.set("degree_min", static_cast<std::uint64_t>(r.degree_min));
  j.set("degree_max", static_cast<std::uint64_t>(r.degree_max));
  j.set("degree_avg", r.degree_avg);
  j.set("sample_sources", static_cast<std::uint64_t>(r.sample_sources));
  j.set("seed_point", point_json(r.seed_point));
  Json front = Json::array();
  for (const OptPoint& p : r.front) front.push_back(point_json(p));
  j.set("front", std::move(front));
  j.set("archive_size", static_cast<std::uint64_t>(r.archive_size));
  j.set("proposals", r.proposals);
  j.set("accepted", r.accepted);
  j.set("invalid", r.invalid);
  j.set("resweeps", r.resweeps);
  j.set("full_sweeps", r.full_sweeps);
  j.set("beats_seed", r.beats_seed);
  j.set("best_cable_m_at_seed_aspl", r.best_cable_m_at_seed_aspl);
  j.set("cable_saved_pct", r.cable_saved_pct);
  j.set("best_aspl", r.best_aspl);
  return j;
}

}  // namespace dsn::opt
