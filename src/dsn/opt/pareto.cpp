// dsn-slint: deterministic
#include "dsn/opt/pareto.hpp"

#include <algorithm>
#include <tuple>

namespace dsn::opt {

namespace {

bool dominates_or_equals(const OptPoint& a, const OptPoint& b) {
  return a.cable_m <= b.cable_m && a.aspl <= b.aspl &&
         a.max_normalized_load <= b.max_normalized_load;
}

}  // namespace

bool dominates(const OptPoint& a, const OptPoint& b) {
  return dominates_or_equals(a, b) &&
         (a.cable_m < b.cable_m || a.aspl < b.aspl ||
          a.max_normalized_load < b.max_normalized_load);
}

bool ParetoArchive::insert(const OptPoint& p) {
  for (const OptPoint& q : points_) {
    if (dominates_or_equals(q, p)) return false;
  }
  std::erase_if(points_, [&p](const OptPoint& q) { return dominates(p, q); });
  points_.push_back(p);
  return true;
}

std::vector<OptPoint> ParetoArchive::front_2d() const {
  std::vector<OptPoint> sorted = points_;
  std::sort(sorted.begin(), sorted.end(), [](const OptPoint& a, const OptPoint& b) {
    return std::tie(a.cable_m, a.aspl, a.max_normalized_load, a.pass, a.iteration) <
           std::tie(b.cable_m, b.aspl, b.max_normalized_load, b.pass, b.iteration);
  });
  std::vector<OptPoint> front;
  for (const OptPoint& p : sorted) {
    if (!front.empty() && p.aspl >= front.back().aspl) continue;
    front.push_back(p);
  }
  return front;
}

}  // namespace dsn::opt
