// dsn-slint: deterministic — the front is committed to BENCH_opt.json and
// byte-compared across thread counts; archive order must depend only on the
// insertion sequence.
//
// Pareto archive over shortcut placements. Three minimized objectives:
// total cable length (m), sampled ASPL, and the max normalized tree load
// (1 / throughput bound). The archive keeps every non-dominated point seen;
// front_2d() projects it onto the cable-vs-ASPL staircase the CI gate checks
// for monotonicity.
#pragma once

#include <cstdint>
#include <vector>

namespace dsn::opt {

struct OptPoint {
  double cable_m = 0.0;
  double aspl = 0.0;
  double max_normalized_load = 0.0;
  double throughput_bound = 0.0;
  std::uint32_t pass = 0;       ///< annealing pass that produced the point
  std::uint32_t iteration = 0;  ///< iteration within the pass (0 = seed)
};

/// True when `a` is no worse than `b` in all three objectives and strictly
/// better in at least one.
bool dominates(const OptPoint& a, const OptPoint& b);

class ParetoArchive {
 public:
  /// Insert a candidate. Returns false (archive unchanged) when an existing
  /// point dominates or exactly equals it; otherwise removes every point the
  /// candidate dominates and appends it.
  bool insert(const OptPoint& p);

  const std::vector<OptPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  /// Cable-vs-ASPL staircase: points sorted by ascending cable, filtered so
  /// ASPL strictly decreases — i.e. strictly ascending cable buys strictly
  /// descending ASPL. Ties break on (load, pass, iteration) so the output is
  /// a pure function of the archive contents.
  std::vector<OptPoint> front_2d() const;

 private:
  std::vector<OptPoint> points_;
};

}  // namespace dsn::opt
