#include "dsn/analysis/load_bound.hpp"

#include <algorithm>
#include <numeric>

#include "dsn/graph/estimator.hpp"

namespace dsn::analyze {

namespace {

double gini_index(std::vector<std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  std::sort(loads.begin(), loads.end());
  long double weighted = 0.0L, total = 0.0L;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    weighted += static_cast<long double>(i + 1) * loads[i];
    total += loads[i];
  }
  if (total == 0.0L) return 0.0;
  const long double m = static_cast<long double>(loads.size());
  return static_cast<double>(2.0L * weighted / (m * total) - (m + 1.0L) / m);
}

}  // namespace

TreeLoadBound compute_tree_load_bound(const CsrView& csr,
                                      std::span<const NodeId> sources) {
  TreeLoadBound b;
  b.n = csr.num_nodes();
  b.sample_sources = static_cast<std::uint32_t>(sources.size());
  b.links = csr.num_arcs() / 2;
  const std::vector<std::int64_t> loads = compute_tree_loads(csr, sources);

  std::vector<std::uint64_t> plain(loads.size());
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const auto load = static_cast<std::uint64_t>(std::max<std::int64_t>(loads[l], 0));
    plain[l] = load;
    b.total += load;
    if (load > b.max_load) {
      b.max_load = load;
      b.max_link = static_cast<LinkId>(l);
    }
  }
  if (b.links > 0)
    b.mean_load = static_cast<double>(b.total) / static_cast<double>(b.links);
  b.gini = gini_index(std::move(plain));
  if (b.max_load > 0 && b.n > 1 && b.sample_sources > 0) {
    b.max_normalized = static_cast<double>(b.max_load) * static_cast<double>(b.n) /
                       (static_cast<double>(b.sample_sources) *
                        static_cast<double>(b.n - 1));
    b.throughput_bound = 1.0 / b.max_normalized;
  }
  return b;
}

TreeLoadBound compute_tree_load_bound(const CsrView& csr) {
  std::vector<NodeId> sources(csr.num_nodes());
  std::iota(sources.begin(), sources.end(), NodeId{0});
  return compute_tree_load_bound(csr, sources);
}

Json to_json(const TreeLoadBound& b) {
  Json j = Json::object();
  j.set("n", static_cast<std::uint64_t>(b.n));
  j.set("sample_sources", static_cast<std::uint64_t>(b.sample_sources));
  j.set("links", static_cast<std::uint64_t>(b.links));
  j.set("total", b.total);
  j.set("max", b.max_load);
  j.set("max_link", static_cast<std::uint64_t>(b.max_link));
  j.set("mean", b.mean_load);
  j.set("gini", b.gini);
  j.set("max_normalized", b.max_normalized);
  j.set("throughput_bound", b.throughput_bound);
  return j;
}

}  // namespace dsn::analyze
