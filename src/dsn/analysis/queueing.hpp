// Analytic performance model: predict average packet latency under uniform
// traffic from queueing theory, and validate the cycle-accurate simulator
// against it at low-to-moderate load.
//
// Model: every source emits packets at the offered rate to uniform random
// destinations; flow splits equally over the minimal-adaptive next hops
// (the routing DAG toward each destination). Each directed link is an M/D/1
// queue with deterministic service time = packet serialization (33 cycles),
// giving waiting time W = rho * S / (2 (1 - rho)). The end-to-end estimate
// adds per-hop router/link delays and the packet serialization once.
#pragma once

#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/config.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

struct QueueingPrediction {
  double avg_latency_ns = 0.0;
  double max_link_utilization = 0.0;  ///< rho of the hottest directed link
  double avg_link_utilization = 0.0;
  bool stable = true;  ///< false when some link has rho >= 1 (saturated)
};

/// Predict the average latency for uniform traffic at the configured offered
/// load, using the minimal-adaptive flow split over `routing`.
QueueingPrediction predict_uniform_latency(const Topology& topo,
                                           const SimRouting& routing,
                                           const SimConfig& config);

/// Per-directed-link packet rates (packets/cycle) under the uniform-traffic
/// minimal-adaptive split; index = 2 * link + dir (dir 0: u -> v of the
/// link's endpoints). Exposed for tests and load-balance analysis.
std::vector<double> uniform_link_rates(const Topology& topo, const SimRouting& routing,
                                       double packets_per_cycle_per_host,
                                       std::uint32_t hosts_per_switch);

}  // namespace dsn
