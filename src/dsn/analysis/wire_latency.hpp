// Zero-load end-to-end latency estimation combining the paper's two delay
// sources (§I): switch traversals (~100 ns each) and cable propagation
// (~5 ns/m). For every ordered switch pair we take a hop-shortest path and
// accumulate the physical cable length along it under the machine-room
// layout, yielding the metric the paper argues about qualitatively: random
// topologies win on hops but pay wire delay for their long cables.
#pragma once

#include "dsn/layout/layout.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

struct WireLatencyConfig {
  double router_ns = 100.0;   ///< per switch traversal (incl. destination)
  double cable_ns_per_m = 5.0;
  MachineRoomConfig room;
};

struct WireLatencyStats {
  double avg_hops = 0.0;
  double avg_cable_m = 0.0;      ///< mean total cable meters along a path
  double avg_latency_ns = 0.0;   ///< hops*router + cable*prop, averaged
  double max_latency_ns = 0.0;
  double wire_fraction = 0.0;    ///< share of the average latency spent on wires
};

/// Estimate over all ordered pairs using BFS hop-shortest paths (ties broken
/// deterministically toward lower node ids) under the topology's
/// conventional placement.
WireLatencyStats estimate_wire_latency(const Topology& topo,
                                       const WireLatencyConfig& config = {});

}  // namespace dsn
