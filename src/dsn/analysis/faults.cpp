#include "dsn/analysis/faults.hpp"

#include <algorithm>
#include <numeric>

#include "dsn/common/rng.hpp"

namespace dsn {

Graph remove_links(const Graph& g, const std::vector<LinkId>& links) {
  std::vector<std::uint8_t> dead(g.num_links(), 0);
  for (const LinkId l : links) {
    DSN_REQUIRE(l < g.num_links(), "link id out of range");
    dead[l] = 1;
  }
  Graph out(g.num_nodes());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (dead[l]) continue;
    const auto [u, v] = g.link_endpoints(l);
    out.add_link(u, v);
  }
  return out;
}

Graph remove_nodes(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<std::uint8_t> dead(g.num_nodes(), 0);
  for (const NodeId v : nodes) {
    DSN_REQUIRE(v < g.num_nodes(), "node id out of range");
    dead[v] = 1;
  }
  Graph out(g.num_nodes());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto [u, v] = g.link_endpoints(l);
    if (!dead[u] && !dead[v]) out.add_link(u, v);
  }
  return out;
}

namespace {

/// Path stats restricted to the `alive` node subset. Connected means every
/// alive node reaches every other alive node.
struct SubsetStats {
  bool connected = false;
  std::uint32_t diameter = 0;
  double aspl = 0.0;
};

SubsetStats subset_path_stats(const Graph& g, const std::vector<std::uint8_t>& alive) {
  SubsetStats out;
  std::uint64_t alive_count = 0;
  for (const auto a : alive) alive_count += a;
  if (alive_count <= 1) {
    out.connected = true;
    return out;
  }
  std::uint64_t pairs = 0;
  std::uint64_t total = 0;
  std::uint32_t diameter = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!alive[s]) continue;
    const auto dist = bfs_distances(g, s);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (!alive[t] || t == s) continue;
      if (dist[t] == kUnreachable) return out;  // connected stays false
      total += dist[t];
      diameter = std::max(diameter, dist[t]);
      ++pairs;
    }
  }
  out.connected = true;
  out.diameter = diameter;
  out.aspl = static_cast<double>(total) / static_cast<double>(pairs);
  return out;
}

FaultTrialResult aggregate_trials(double fraction, const std::vector<SubsetStats>& stats) {
  FaultTrialResult result;
  result.fraction_failed = fraction;
  result.trials = static_cast<std::uint32_t>(stats.size());
  double diam_sum = 0.0, aspl_sum = 0.0;
  for (const SubsetStats& s : stats) {
    if (!s.connected) continue;
    ++result.connected_trials;
    diam_sum += s.diameter;
    aspl_sum += s.aspl;
  }
  result.connected_rate =
      result.trials == 0 ? 0.0
                         : static_cast<double>(result.connected_trials) / result.trials;
  if (result.connected_trials > 0) {
    result.avg_diameter = diam_sum / result.connected_trials;
    result.avg_aspl = aspl_sum / result.connected_trials;
  }
  return result;
}

}  // namespace

FaultTrialResult evaluate_link_faults(const Topology& topo, double fraction,
                                      std::uint32_t trials, std::uint64_t seed) {
  DSN_REQUIRE(fraction >= 0.0 && fraction < 1.0, "fraction must be in [0, 1)");
  const Graph& g = topo.graph;
  const auto kill = static_cast<std::size_t>(
      static_cast<double>(g.num_links()) * fraction + 0.5);
  std::vector<SubsetStats> stats(trials);
  const std::vector<std::uint8_t> all_alive(g.num_nodes(), 1);

  Rng rng(seed);
  std::vector<LinkId> links(g.num_links());
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    std::iota(links.begin(), links.end(), 0);
    // Partial Fisher-Yates: the first `kill` entries are a uniform sample.
    for (std::size_t i = 0; i < kill; ++i) {
      const auto j = i + static_cast<std::size_t>(rng.next_below(links.size() - i));
      std::swap(links[i], links[j]);
    }
    const Graph degraded = remove_links(g, {links.begin(), links.begin() + static_cast<std::ptrdiff_t>(kill)});
    stats[trial] = subset_path_stats(degraded, all_alive);
  }
  return aggregate_trials(fraction, stats);
}

FaultTrialResult evaluate_switch_faults(const Topology& topo, double fraction,
                                        std::uint32_t trials, std::uint64_t seed) {
  DSN_REQUIRE(fraction >= 0.0 && fraction < 1.0, "fraction must be in [0, 1)");
  const Graph& g = topo.graph;
  const auto kill = static_cast<std::size_t>(
      static_cast<double>(g.num_nodes()) * fraction + 0.5);
  std::vector<SubsetStats> stats(trials);

  Rng rng(seed);
  std::vector<NodeId> nodes(g.num_nodes());
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    std::iota(nodes.begin(), nodes.end(), 0);
    for (std::size_t i = 0; i < kill; ++i) {
      const auto j = i + static_cast<std::size_t>(rng.next_below(nodes.size() - i));
      std::swap(nodes[i], nodes[j]);
    }
    std::vector<std::uint8_t> alive(g.num_nodes(), 1);
    for (std::size_t i = 0; i < kill; ++i) alive[nodes[i]] = 0;
    const Graph degraded =
        remove_nodes(g, {nodes.begin(), nodes.begin() + static_cast<std::ptrdiff_t>(kill)});
    stats[trial] = subset_path_stats(degraded, alive);
  }
  return aggregate_trials(fraction, stats);
}

}  // namespace dsn
