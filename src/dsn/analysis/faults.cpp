#include "dsn/analysis/faults.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <span>

#include "dsn/common/rng.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/graph/csr.hpp"
#include "dsn/graph/msbfs.hpp"

namespace dsn {

Graph remove_links(const Graph& g, const std::vector<LinkId>& links) {
  std::vector<std::uint8_t> dead(g.num_links(), 0);
  for (const LinkId l : links) {
    DSN_REQUIRE(l < g.num_links(), "link id out of range");
    dead[l] = 1;
  }
  Graph out(g.num_nodes());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (dead[l]) continue;
    const auto [u, v] = g.link_endpoints(l);
    out.add_link(u, v);
  }
  return out;
}

Graph remove_nodes(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<std::uint8_t> dead(g.num_nodes(), 0);
  for (const NodeId v : nodes) {
    DSN_REQUIRE(v < g.num_nodes(), "node id out of range");
    dead[v] = 1;
  }
  Graph out(g.num_nodes());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto [u, v] = g.link_endpoints(l);
    if (!dead[u] && !dead[v]) out.add_link(u, v);
  }
  return out;
}

SubsetPathStats subset_path_stats(const Graph& g, const std::vector<std::uint8_t>& alive) {
  DSN_REQUIRE(alive.size() == g.num_nodes(), "alive mask size mismatch");
  SubsetPathStats out;
  std::vector<NodeId> sources;
  sources.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) sources.push_back(v);
  }
  const std::uint64_t alive_count = sources.size();
  if (alive_count <= 1) {
    out.connected = true;
    return out;
  }

  const CsrView csr(g);
  const std::size_t batches = (sources.size() + kMsBfsBatch - 1) / kMsBfsBatch;
  struct BatchAcc {
    std::uint64_t reached = 0;
    std::uint64_t total = 0;
    std::uint32_t diameter = 0;
  };
  std::vector<BatchAcc> acc(batches);
  ThreadPool::global().parallel_for(0, batches, [&](std::size_t b) {
    const std::size_t lo = b * kMsBfsBatch;
    const std::size_t count = std::min<std::size_t>(kMsBfsBatch, sources.size() - lo);
    MsBfsScratch scratch;
    BatchAcc& a = acc[b];
    msbfs_sweep(csr, std::span<const NodeId>(sources).subspan(lo, count), scratch,
                [&](NodeId v, std::uint32_t level, std::uint64_t fresh) {
                  if (!alive[v]) return;
                  const auto lanes = static_cast<std::uint32_t>(std::popcount(fresh));
                  a.reached += lanes;
                  a.total += static_cast<std::uint64_t>(level) * lanes;
                  a.diameter = std::max(a.diameter, level);
                });
  });

  std::uint64_t reached = 0;
  std::uint64_t total = 0;
  std::uint32_t diameter = 0;
  for (const BatchAcc& a : acc) {  // batch-order merge: worker-count invariant
    reached += a.reached;
    total += a.total;
    diameter = std::max(diameter, a.diameter);
  }
  const std::uint64_t pairs = alive_count * (alive_count - 1);
  if (reached != pairs) return out;  // disconnected: all-zero stats
  out.connected = true;
  out.diameter = diameter;
  out.aspl = static_cast<double>(total) / static_cast<double>(pairs);
  return out;
}

namespace {

FaultTrialResult aggregate_trials(double fraction,
                                  const std::vector<SubsetPathStats>& stats) {
  FaultTrialResult result;
  result.fraction_failed = fraction;
  result.trials = static_cast<std::uint32_t>(stats.size());
  double diam_sum = 0.0, aspl_sum = 0.0;
  for (const SubsetPathStats& s : stats) {
    if (!s.connected) continue;
    ++result.connected_trials;
    diam_sum += s.diameter;
    aspl_sum += s.aspl;
  }
  result.connected_rate =
      result.trials == 0 ? 0.0
                         : static_cast<double>(result.connected_trials) / result.trials;
  if (result.connected_trials > 0) {
    result.avg_diameter = diam_sum / result.connected_trials;
    result.avg_aspl = aspl_sum / result.connected_trials;
  }
  return result;
}

}  // namespace

FaultTrialResult evaluate_link_faults(const Topology& topo, double fraction,
                                      std::uint32_t trials, std::uint64_t seed) {
  DSN_REQUIRE(fraction >= 0.0 && fraction < 1.0, "fraction must be in [0, 1)");
  const Graph& g = topo.graph;
  const auto kill = static_cast<std::size_t>(
      static_cast<double>(g.num_links()) * fraction + 0.5);
  std::vector<SubsetPathStats> stats(trials);
  const std::vector<std::uint8_t> all_alive(g.num_nodes(), 1);

  Rng rng(seed);
  std::vector<LinkId> links(g.num_links());
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    std::iota(links.begin(), links.end(), 0);
    // Partial Fisher-Yates: the first `kill` entries are a uniform sample.
    for (std::size_t i = 0; i < kill; ++i) {
      const auto j = i + static_cast<std::size_t>(rng.next_below(links.size() - i));
      std::swap(links[i], links[j]);
    }
    const Graph degraded = remove_links(g, {links.begin(), links.begin() + static_cast<std::ptrdiff_t>(kill)});
    stats[trial] = subset_path_stats(degraded, all_alive);
  }
  return aggregate_trials(fraction, stats);
}

FaultTrialResult evaluate_switch_faults(const Topology& topo, double fraction,
                                        std::uint32_t trials, std::uint64_t seed) {
  DSN_REQUIRE(fraction >= 0.0 && fraction < 1.0, "fraction must be in [0, 1)");
  const Graph& g = topo.graph;
  const auto kill = static_cast<std::size_t>(
      static_cast<double>(g.num_nodes()) * fraction + 0.5);
  std::vector<SubsetPathStats> stats(trials);

  Rng rng(seed);
  std::vector<NodeId> nodes(g.num_nodes());
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    std::iota(nodes.begin(), nodes.end(), 0);
    for (std::size_t i = 0; i < kill; ++i) {
      const auto j = i + static_cast<std::size_t>(rng.next_below(nodes.size() - i));
      std::swap(nodes[i], nodes[j]);
    }
    std::vector<std::uint8_t> alive(g.num_nodes(), 1);
    for (std::size_t i = 0; i < kill; ++i) alive[nodes[i]] = 0;
    const Graph degraded =
        remove_nodes(g, {nodes.begin(), nodes.begin() + static_cast<std::ptrdiff_t>(kill)});
    stats[trial] = subset_path_stats(degraded, alive);
  }
  return aggregate_trials(fraction, stats);
}

}  // namespace dsn
