#include "dsn/analysis/queueing.hpp"

#include <algorithm>
#include <numeric>

namespace dsn {

namespace {

/// Directed-link index consistent with Simulator::link_flit_counts().
std::uint32_t dir_index(const Graph& g, NodeId from, NodeId to) {
  const LinkId link = g.find_link(from, to);
  DSN_ASSERT(link != kInvalidLink, "flow must follow physical links");
  const auto [a, b] = g.link_endpoints(link);
  return 2 * link + (from == a ? 0u : 1u);
}

}  // namespace

std::vector<double> uniform_link_rates(const Topology& topo, const SimRouting& routing,
                                       double packets_per_cycle_per_host,
                                       std::uint32_t hosts_per_switch) {
  const Graph& g = topo.graph;
  const NodeId n = g.num_nodes();
  const double num_hosts = static_cast<double>(n) * hosts_per_switch;
  // Rate from one switch toward one specific destination *switch*: each host
  // picks uniformly among the other num_hosts-1 hosts; hosts on the same
  // switch still traverse the network only if dst is off-switch, so pairs
  // with src_switch == dst_switch carry no link load.
  const double per_switch_pair_rate = packets_per_cycle_per_host * hosts_per_switch *
                                      hosts_per_switch / (num_hosts - 1.0);

  std::vector<double> rates(g.num_links() * 2, 0.0);
  std::vector<double> inflow(n);
  std::vector<NodeId> order(n);

  for (NodeId t = 0; t < n; ++t) {
    // Process nodes by decreasing distance to t so each node's total flow is
    // final before it is split over its minimal next hops.
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return routing.distance(a, t) > routing.distance(b, t);
    });
    std::fill(inflow.begin(), inflow.end(), 0.0);
    for (const NodeId u : order) {
      if (u == t) continue;
      const double flow = per_switch_pair_rate + inflow[u];
      const auto next = routing.minimal_next_hops(u, t);
      DSN_ASSERT(!next.empty(), "connected graph must provide next hops");
      const double share = flow / static_cast<double>(next.size());
      for (const NodeId w : next) {
        inflow[w] += share;
        rates[dir_index(g, u, w)] += share;
      }
    }
  }
  return rates;
}

QueueingPrediction predict_uniform_latency(const Topology& topo,
                                           const SimRouting& routing,
                                           const SimConfig& config) {
  const Graph& g = topo.graph;
  const NodeId n = g.num_nodes();
  DSN_REQUIRE(n >= 2, "need at least two switches");

  const double pkt_rate = config.packet_rate_per_cycle();
  const auto rates =
      uniform_link_rates(topo, routing, pkt_rate, config.hosts_per_switch);

  // Per-link M/D/1 waiting time in cycles.
  const double service = static_cast<double>(config.packet_flits);
  std::vector<double> wait(rates.size(), 0.0);
  QueueingPrediction out;
  double util_sum = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rho = rates[i] * service;
    util_sum += rho;
    out.max_link_utilization = std::max(out.max_link_utilization, rho);
    if (rho >= 1.0) {
      out.stable = false;
      wait[i] = 0.0;  // reported latency is meaningless when unstable
    } else {
      wait[i] = rho * service / (2.0 * (1.0 - rho));
    }
  }
  out.avg_link_utilization = rates.empty() ? 0.0 : util_sum / static_cast<double>(rates.size());
  if (!out.stable) return out;

  // Expected end-to-end delay: DP per destination over the routing DAG.
  // D(u) = mean over next hops w of [wait(u->w) + D(w)], plus fixed per-hop
  // costs accumulated from the expected hop count.
  const double cyc_ns = config.cycle_ns();
  const double router = static_cast<double>(config.router_delay_cycles());
  const double link = static_cast<double>(config.link_delay_cycles());

  std::vector<double> d(n), hops(n);
  std::vector<NodeId> order(n);
  double delay_total = 0.0;
  double pairs = 0.0;

  for (NodeId t = 0; t < n; ++t) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return routing.distance(a, t) < routing.distance(b, t);
    });
    d[t] = 0.0;
    hops[t] = 0.0;
    for (const NodeId u : order) {
      if (u == t) continue;
      const auto next = routing.minimal_next_hops(u, t);
      double acc = 0.0, h = 0.0;
      for (const NodeId w : next) {
        acc += wait[dir_index(g, u, w)] + d[w];
        h += hops[w];
      }
      d[u] = acc / static_cast<double>(next.size());
      hops[u] = 1.0 + h / static_cast<double>(next.size());
    }
    for (NodeId s = 0; s < n; ++s) {
      if (s == t) continue;
      // Fixed costs: router per switch traversal (hops+1), link delay for
      // injection + each hop + ejection, serialization once, plus queueing.
      const double fixed = (hops[s] + 1.0) * router + (hops[s] + 2.0) * link +
                           static_cast<double>(config.packet_flits);
      delay_total += (fixed + d[s]) * cyc_ns;
      pairs += 1.0;
    }
  }
  out.avg_latency_ns = delay_total / pairs;
  return out;
}

}  // namespace dsn
