#include "dsn/analysis/factory.hpp"

#include "dsn/common/math.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {

Topology make_topology_by_name(const std::string& name, std::uint32_t n,
                               std::uint64_t seed) {
  if (name == "dsn") return make_dsn(n, dsn_default_x(n));
  if (name == "torus") return make_torus_2d_near_square(n);
  if (name == "torus3d") return make_torus_3d_near_cube(n);
  if (name == "random") return make_dln_random(n, 2, 2, seed);
  if (name == "ring") return make_ring(n);
  if (name == "dln") return make_dln(n, ilog2_ceil(n));
  if (name == "kleinberg") {
    const auto side = static_cast<std::uint32_t>(isqrt(n));
    DSN_REQUIRE(side * side == n, "kleinberg needs a square node count");
    return make_kleinberg(side, 1, 2.0, seed);
  }
  if (name == "random-regular") return make_random_regular(n, 4, seed);
  if (name == "dsn-d") return DsnD(n, 2).topology();
  if (name == "dsn-e") return DsnE(n).topology();
  if (name == "dsn-bidir") return make_dsn_bidir(n);
  throw PreconditionError("unknown topology name: " + name);
}

std::vector<std::string> paper_topology_trio() { return {"torus", "random", "dsn"}; }

}  // namespace dsn
