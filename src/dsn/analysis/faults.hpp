// Fault-tolerance analysis: degrade a topology by removing random links (or
// switches) and measure connectivity and path-length inflation. The paper's
// introduction motivates low-degree topologies partly by "simple management
// mechanisms for faults"; this module quantifies how gracefully each topology
// degrades.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/graph/metrics.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

struct FaultTrialResult {
  double fraction_failed = 0.0;
  double connected_rate = 0.0;       ///< fraction of trials that stayed connected
  double avg_diameter = 0.0;         ///< over connected trials
  double avg_aspl = 0.0;             ///< over connected trials
  std::uint32_t trials = 0;
  std::uint32_t connected_trials = 0;
};

/// Remove `round(fraction * links)` random links per trial and evaluate.
FaultTrialResult evaluate_link_faults(const Topology& topo, double fraction,
                                      std::uint32_t trials, std::uint64_t seed);

/// Remove `round(fraction * nodes)` random switches (with their links) per
/// trial and evaluate the surviving subgraph.
FaultTrialResult evaluate_switch_faults(const Topology& topo, double fraction,
                                        std::uint32_t trials, std::uint64_t seed);

/// Path statistics restricted to an `alive` node subset: connected means
/// every alive node reaches every other alive node; diameter/ASPL are over
/// alive pairs only (all zero when disconnected). Runs ceil(alive/64)
/// bit-parallel MS-BFS sweeps over a CSR snapshot instead of one BFS per
/// node; per-batch accumulators are merged in batch order, so the result is
/// deterministic for any worker count.
struct SubsetPathStats {
  bool connected = false;
  std::uint32_t diameter = 0;
  double aspl = 0.0;
};

SubsetPathStats subset_path_stats(const Graph& g, const std::vector<std::uint8_t>& alive);

/// Copy of a graph with the given links removed.
Graph remove_links(const Graph& g, const std::vector<LinkId>& links);

/// Induced subgraph after deleting the given nodes (ids are preserved; the
/// removed nodes become isolated and are excluded from the metrics by the
/// fault evaluators).
Graph remove_nodes(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace dsn
