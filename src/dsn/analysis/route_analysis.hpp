// Whole-network static routing analysis (dsn::analyze).
//
// For a routing family (DSN custom, DSN-D express, torus DOR, grid greedy,
// up*/down*) the analyzer enumerates *all* n·(n-1) ordered-pair routes in
// parallel and proves or refutes routing-function-level properties with
// structured evidence:
//
//  - loop freedom          — no route revisits a node (witness: the route);
//  - reachability          — every route starts at s, chains hop to hop, and
//                            terminates at t (witness: the broken route);
//  - hop bounds            — every route respects the paper's analytic bound
//                            when its premise holds (Fact 2 / Theorem 2 for
//                            the DSN custom routing: 3p + r when
//                            x > p - log p; the exact DOR diameter for tori);
//  - static channel load   — per-channel route counts (max / mean / Gini),
//                            yielding the uniform-traffic throughput upper
//                            bound 1 / max normalized load;
//  - CDG acyclicity        — full channel-dependency graph with a *minimal*
//                            cycle witness when cyclic (Theorem 3 positive on
//                            DSN-E/DSN-V, negative control on basic DSN).
//
// The sweep shards sources across the global thread pool into thread-local
// channel-dependency graphs merged deterministically, so n = 4096 (16.7M
// routes) completes in seconds in Release builds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsn/common/json.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/routing/route.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn::analyze {

/// Routing function families the analyzer knows how to drive.
enum class RoutingFamily : std::uint8_t {
  kDsn,         ///< DSN custom three-phase routing (basic / DSN-E / DSN-V)
  kDsnD,        ///< DSN-D express-aware routing
  kTorusDor,    ///< dimension-order routing on 2-D/3-D tori
  kGreedyGrid,  ///< greedy geographic routing on Kleinberg grids
  kUpDown,      ///< up*/down* escape routing (any connected topology)
};

const char* to_string(RoutingFamily family);

/// How DSN routes map onto channels: a single unprotected class (the basic
/// design, expected cyclic) or the §V-A Up/Main/Finish/Extra classes
/// (physical links on DSN-E, virtual channels on DSN-V — Theorem 3).
enum class ChannelScheme : std::uint8_t { kBasic, kExtended };

const char* to_string(ChannelScheme scheme);

struct RouteAnalysisOptions {
  /// Check per-pair hop counts against the family's analytic bound (skipped
  /// when no bound's premise applies).
  bool check_hop_bound = true;
  /// When the CDG is cyclic, search for a *shortest* cycle witness (falls
  /// back to the first DFS cycle past the work cap).
  bool find_min_cycle = true;
  std::uint64_t min_cycle_work_cap = 1ULL << 28;
  /// Offending routes retained per refuted property.
  std::size_t max_witnesses = 4;
};

/// One offending route kept as evidence for a refuted property.
struct RouteWitness {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<NodeId> path;  ///< node sequence, including both endpoints
  std::string reason;
};

/// Static channel-load statistics over all ordered-pair routes. "Load" of a
/// channel is the number of routes traversing it; under uniform all-to-all
/// traffic a source injecting at rate r puts r·load/(n-1) on the channel, so
/// unit-capacity channels saturate at injection rate (n-1)/max_load — the
/// static throughput upper bound.
struct ChannelLoadStats {
  std::size_t channels = 0;
  std::uint64_t total = 0;     ///< sum of loads = total hops over all routes
  std::uint64_t max_load = 0;
  double mean_load = 0.0;
  double gini = 0.0;           ///< load-imbalance index in [0, 1)
  Channel max_channel{};       ///< a channel attaining max_load
  double max_normalized = 0.0;      ///< max_load / (n-1)
  double throughput_bound = 0.0;    ///< 1 / max_normalized
};

/// Result of one whole-network analysis run.
struct RouteAnalysis {
  std::string topology;
  RoutingFamily family = RoutingFamily::kDsn;
  ChannelScheme scheme = ChannelScheme::kBasic;
  NodeId n = 0;
  std::uint64_t pairs = 0;

  // Proven (true) / refuted (false) properties.
  bool loop_free = true;
  bool all_reachable = true;
  bool within_hop_bound = true;  ///< vacuously true when hop_bound == 0
  bool cdg_acyclic = true;

  std::uint32_t hop_bound = 0;  ///< analytic per-pair bound; 0 = none applies
  std::string hop_bound_law;    ///< provenance of the bound, for reports
  std::uint32_t max_hops = 0;
  double avg_hops = 0.0;
  std::uint64_t fallback_routes = 0;

  std::vector<RouteWitness> loop_witnesses;
  std::vector<RouteWitness> endpoint_witnesses;
  std::vector<RouteWitness> bound_witnesses;

  ChannelLoadStats load;

  std::size_t cdg_channels = 0;
  std::size_t cdg_dependencies = 0;
  std::vector<Channel> cdg_cycle;  ///< minimal cycle witness; empty if acyclic

  /// True when every per-route property holds (loop freedom, reachability,
  /// hop bound, no defensive fallbacks). CDG acyclicity is judged separately
  /// because the basic DSN scheme is *expected* to refute it.
  bool routes_ok() const {
    return loop_free && all_reachable && within_hop_bound && fallback_routes == 0;
  }
};

/// The analyzer core: run `route_fn` over all ordered pairs of an n-node
/// network, mapping each route onto channels with `channel_map`. `hop_bound`
/// of 0 disables the bound check. Deterministic regardless of thread count.
RouteAnalysis analyze_route_function(
    NodeId n, const std::function<Route(NodeId, NodeId)>& route_fn,
    const std::function<std::vector<Channel>(const Route&)>& channel_map,
    std::uint32_t hop_bound = 0, std::string hop_bound_law = {},
    const RouteAnalysisOptions& options = {});

/// DSN custom routing over a basic DSN (covers DSN-E and DSN-V via `scheme`).
RouteAnalysis analyze_dsn_routes(const Dsn& dsn, ChannelScheme scheme,
                                 const RouteAnalysisOptions& options = {});

/// DSN-D express routing (channels always use the extended classes).
RouteAnalysis analyze_dsn_d_routes(const DsnD& dd,
                                   const RouteAnalysisOptions& options = {});

/// A routing function bound to a topology, together with the state that
/// keeps it callable (router objects, CSR snapshots) and the family's channel
/// mapping and analytic hop bound. The analyzer and the flow tier both build
/// routes through this factory, so "the routes the analyzer proves" and "the
/// routes the flow tier loads links with" are the same definition by
/// construction. `route` and `channel_map` are safe to call concurrently;
/// both may reference `topo`, which must outlive the returned object.
struct BoundRouting {
  std::function<Route(NodeId, NodeId)> route;
  std::function<std::vector<Channel>(const Route&)> channel_map;
  std::shared_ptr<const void> state;  ///< keep-alive for captured routing structures
  std::uint32_t hop_bound = 0;        ///< analytic per-pair bound; 0 = none applies
  std::string hop_bound_law;
  ChannelScheme scheme = ChannelScheme::kBasic;
};

/// Bind `family`'s routing function to `topo`, reconstructing routing
/// parameters from the topology kind/name (throws dsn::PreconditionError when
/// the family does not apply or parameters cannot be recovered). Note the
/// up*/down* family materialises O(n^2) distance tables — callers that scale
/// past small n must pick a table-free family.
BoundRouting make_route_function(const Topology& topo, RoutingFamily family);

/// Analyze a Topology with the given family (via make_route_function).
RouteAnalysis analyze_topology_routes(const Topology& topo, RoutingFamily family,
                                      const RouteAnalysisOptions& options = {});

/// The native routing family of a topology kind; kUpDown for kinds without a
/// family-specific routing function.
RoutingFamily default_family(TopologyKind kind);

/// Human-readable channel-class name under a scheme ("up", "main", "finish",
/// "extra"; "c<k>" for basic/unknown classes).
std::string channel_class_name(ChannelScheme scheme, std::uint8_t cls);

/// "17->16 [up] via up link#520" — node pair, channel class, and the physical
/// link (role + id) carrying the channel in `topo`, when one exists.
std::string render_channel(const Topology& topo, const Channel& c, ChannelScheme scheme);

/// Multi-line rendering of a CDG cycle witness as a closed channel chain.
std::string render_cycle_witness(const Topology& topo, const std::vector<Channel>& cycle,
                                 ChannelScheme scheme);

/// Machine-readable report (stable schema; see dsn-lint --json).
Json to_json(const RouteAnalysis& analysis);

/// Multi-line human-readable report.
std::string summary(const RouteAnalysis& analysis);

}  // namespace dsn::analyze
