// Shared link-load throughput bound over canonical shortest-path trees.
//
// The route analyzer's ChannelLoadStats counts routing-function routes; this
// estimator counts the loads a topology's *canonical BFS trees* put on each
// physical link — a routing-independent lower bound on congestion that any
// minimal routing at best equals. The optimizer (dsn/opt) anneals against it
// incrementally via SampledPathEstimator; this wrapper is the one-shot view
// for analyzer/tool consumers, exact (all sources) or sampled, sharing the
// same tree-load kernel and the same normalization so numbers are comparable
// across dsn-lint commands.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsn/common/json.hpp"
#include "dsn/graph/csr.hpp"

namespace dsn::analyze {

/// Per-link load statistics over the sampled sources' canonical trees.
/// Normalization matches dsn::EstimateView: max_normalized scales the sampled
/// max to all n sources and divides by ordered pairs per source, so the
/// throughput bound stays comparable between exact and sampled runs.
struct TreeLoadBound {
  NodeId n = 0;
  std::uint32_t sample_sources = 0;  ///< number of tree roots counted
  std::size_t links = 0;
  std::uint64_t total = 0;           ///< sum of loads over all links
  std::uint64_t max_load = 0;
  LinkId max_link = 0;               ///< a link attaining max_load (lowest id)
  double mean_load = 0.0;
  double gini = 0.0;                 ///< load-imbalance index in [0, 1)
  double max_normalized = 0.0;       ///< max_load * n / (S * (n - 1))
  double throughput_bound = 0.0;     ///< 1 / max_normalized
};

/// Tree-load bound over an explicit source set (deterministic for any thread
/// count; see dsn::compute_tree_loads).
TreeLoadBound compute_tree_load_bound(const CsrView& csr,
                                      std::span<const NodeId> sources);

/// Exact variant: every node is a tree root.
TreeLoadBound compute_tree_load_bound(const CsrView& csr);

Json to_json(const TreeLoadBound& bound);

}  // namespace dsn::analyze
