// Experiment runners shared between the bench binaries, tests and examples.
// Each figure of the paper's evaluation maps onto one of these sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsn/graph/metrics.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

/// One (topology, size) point of the Figure 7/8/9 sweeps.
struct GraphSweepPoint {
  std::string topology;
  std::uint32_t n = 0;
  std::uint32_t diameter = 0;       ///< Fig. 7
  double aspl = 0.0;                ///< Fig. 8
  double avg_cable_m = 0.0;         ///< Fig. 9
  double total_cable_m = 0.0;
  double avg_degree = 0.0;
  std::size_t max_degree = 0;
};

/// Run the Fig. 7/8/9 sweep for one topology family over the given sizes.
std::vector<GraphSweepPoint> run_graph_sweep(const std::string& family,
                                             const std::vector<std::uint64_t>& sizes,
                                             std::uint64_t seed = 1);

/// Compute one point (metrics + layout) for an already built topology.
GraphSweepPoint evaluate_topology(const Topology& topo);

/// One latency-vs-load curve point of Figure 10. With replicas > 1, the
/// metrics are means over the replicated seeds and latency_stddev_ns holds
/// the sample standard deviation of the mean latency.
struct LatencyPoint {
  double offered_gbps = 0.0;
  double accepted_gbps = 0.0;
  double avg_latency_ns = 0.0;
  double latency_stddev_ns = 0.0;
  double p99_latency_ns = 0.0;
  double avg_hops = 0.0;
  bool drained = false;   ///< all replicas drained
  bool deadlock = false;  ///< any replica deadlocked
};

struct LatencySweepConfig {
  std::string traffic = "uniform";
  std::vector<double> offered_gbps;  ///< loads to sweep
  SimConfig sim;                     ///< offered load overridden per point
  /// "adaptive-updown" (paper default), "updown-only", or "dsn-custom"
  /// (the latter requires a DSN topology and vcs % 4 == 0).
  std::string policy = "adaptive-updown";
  /// Independent replications per load (seeds sim.seed, sim.seed+1, ...).
  std::uint32_t replicas = 1;
};

/// Run a latency-vs-accepted-traffic sweep over the offered loads. Points are
/// simulated in parallel (each simulation is single-threaded deterministic).
std::vector<LatencyPoint> run_latency_sweep(const Topology& topo,
                                            const LatencySweepConfig& config);

/// Per-link traffic-balance statistics for the custom-routing ablation.
struct LinkLoadStats {
  double mean_flits = 0.0;
  double max_flits = 0.0;
  double coefficient_of_variation = 0.0;  ///< stddev / mean
  double max_over_mean = 0.0;
};
LinkLoadStats summarize_link_loads(const std::vector<std::uint64_t>& link_flits);

}  // namespace dsn
