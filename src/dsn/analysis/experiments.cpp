#include "dsn/analysis/experiments.hpp"

#include <cmath>
#include <memory>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {

GraphSweepPoint evaluate_topology(const Topology& topo) {
  GraphSweepPoint point;
  point.topology = topo.name;
  point.n = topo.num_nodes();
  const PathStats stats = compute_path_stats(topo.graph);
  DSN_REQUIRE(stats.connected, "topology must be connected: " + topo.name);
  point.diameter = stats.diameter;
  point.aspl = stats.avg_shortest_path;
  const CableReport cable = compute_cable_report(topo);
  point.avg_cable_m = cable.average_m;
  point.total_cable_m = cable.total_m;
  const DegreeStats deg = compute_degree_stats(topo.graph);
  point.avg_degree = deg.avg_degree;
  point.max_degree = deg.max_degree;
  return point;
}

std::vector<GraphSweepPoint> run_graph_sweep(const std::string& family,
                                             const std::vector<std::uint64_t>& sizes,
                                             std::uint64_t seed) {
  std::vector<GraphSweepPoint> points(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Topology topo =
        make_topology_by_name(family, static_cast<std::uint32_t>(sizes[i]), seed);
    points[i] = evaluate_topology(topo);
    points[i].topology = family;
  }
  return points;
}

std::vector<LatencyPoint> run_latency_sweep(const Topology& topo,
                                            const LatencySweepConfig& config) {
  // Shared read-only preprocessing.
  SimRouting routing(topo);
  std::unique_ptr<Dsn> dsn_struct;
  if (config.policy == "dsn-custom") {
    DSN_REQUIRE(topo.kind == TopologyKind::kDsn,
                "dsn-custom policy needs a basic DSN topology");
    DSN_REQUIRE(config.sim.vcs % 4 == 0, "dsn-custom policy needs a multiple of 4 VCs");
    dsn_struct = std::make_unique<Dsn>(topo.num_nodes(), dsn_default_x(topo.num_nodes()));
  }

  const std::uint32_t num_hosts = topo.num_nodes() * config.sim.hosts_per_switch;
  std::vector<LatencyPoint> points(config.offered_gbps.size());

  const std::uint32_t replicas = std::max(1u, config.replicas);
  parallel_for(0, config.offered_gbps.size(), [&](std::size_t i) {
    LatencyPoint& pt = points[i];
    pt.offered_gbps = config.offered_gbps[i];
    pt.drained = true;
    std::vector<double> latencies;
    latencies.reserve(replicas);

    for (std::uint32_t rep = 0; rep < replicas; ++rep) {
      SimConfig sim_cfg = config.sim;
      sim_cfg.offered_gbps_per_host = config.offered_gbps[i];
      sim_cfg.seed = config.sim.seed + rep;

      std::unique_ptr<SimRoutingPolicy> policy;
      if (config.policy == "adaptive-updown") {
        policy = std::make_unique<AdaptiveUpDownPolicy>(routing, sim_cfg.vcs);
      } else if (config.policy == "updown-only") {
        policy = std::make_unique<UpDownOnlyPolicy>(routing, sim_cfg.vcs);
      } else if (config.policy == "dsn-custom") {
        policy = std::make_unique<DsnCustomPolicy>(*dsn_struct, sim_cfg.vcs);
      } else {
        throw PreconditionError("unknown policy: " + config.policy);
      }
      const auto traffic = make_traffic(config.traffic, num_hosts);

      const SimResult res = run_simulation(topo, *policy, *traffic, sim_cfg);
      pt.accepted_gbps += res.accepted_gbps_per_host;
      pt.p99_latency_ns += res.p99_latency_ns;
      pt.avg_hops += res.avg_hops;
      pt.drained = pt.drained && res.drained;
      pt.deadlock = pt.deadlock || res.deadlock;
      latencies.push_back(res.avg_latency_ns);
    }

    pt.accepted_gbps /= replicas;
    pt.p99_latency_ns /= replicas;
    pt.avg_hops /= replicas;
    double mean = 0.0;
    for (const double v : latencies) mean += v;
    mean /= static_cast<double>(latencies.size());
    pt.avg_latency_ns = mean;
    if (latencies.size() > 1) {
      double var = 0.0;
      for (const double v : latencies) var += (v - mean) * (v - mean);
      pt.latency_stddev_ns = std::sqrt(var / static_cast<double>(latencies.size() - 1));
    }
  });
  return points;
}

LinkLoadStats summarize_link_loads(const std::vector<std::uint64_t>& link_flits) {
  LinkLoadStats stats;
  if (link_flits.empty()) return stats;
  double sum = 0.0, max = 0.0;
  for (const auto v : link_flits) {
    sum += static_cast<double>(v);
    max = std::max(max, static_cast<double>(v));
  }
  const double mean = sum / static_cast<double>(link_flits.size());
  double var = 0.0;
  for (const auto v : link_flits) {
    const double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(link_flits.size());
  stats.mean_flits = mean;
  stats.max_flits = max;
  stats.coefficient_of_variation = mean > 0 ? std::sqrt(var) / mean : 0.0;
  stats.max_over_mean = mean > 0 ? max / mean : 0.0;
  return stats;
}

}  // namespace dsn
