// Named topology factory used by benches, tests and examples, following the
// paper's counterpart conventions: "DSN" is DSN-(p-1)-n, "RANDOM" is DLN-2-2
// (ring plus two random matchings, exact degree 4), "torus" is the most
// nearly square 2-D torus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsn/topology/topology.hpp"

namespace dsn {

/// Build a topology by family name: "dsn", "torus" (2-D), "torus3d",
/// "random" (DLN-2-2), "ring", "dln" (DLN-log n), "kleinberg" (requires
/// square n), "random-regular" (degree 4), "dsn-d", "dsn-e", "dsn-bidir"
/// (degree-6 DSN).
Topology make_topology_by_name(const std::string& name, std::uint32_t n,
                               std::uint64_t seed = 1);

/// The trio compared throughout the paper's evaluation, in plot order.
std::vector<std::string> paper_topology_trio();

}  // namespace dsn
