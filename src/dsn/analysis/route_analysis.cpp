// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/analysis/route_analysis.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

#include "dsn/common/math.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dor.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/greedy.hpp"
#include "dsn/obs/obs.hpp"
#include "dsn/routing/updown.hpp"

namespace dsn::analyze {

#if DSN_OBS
namespace {

struct AnalysisMetrics {
  obs::MetricId routes = obs::MetricsRegistry::global().counter("dsn.analysis.routes_checked");
  obs::MetricId shard_ns = obs::MetricsRegistry::global().counter("dsn.analysis.shard_ns");
  obs::MetricId shards_run = obs::MetricsRegistry::global().counter("dsn.analysis.shards");

  static const AnalysisMetrics& get() {
    static AnalysisMetrics metrics;
    return metrics;
  }
};

}  // namespace
#endif  // DSN_OBS

const char* to_string(RoutingFamily family) {
  switch (family) {
    case RoutingFamily::kDsn: return "dsn";
    case RoutingFamily::kDsnD: return "dsn-d";
    case RoutingFamily::kTorusDor: return "dor";
    case RoutingFamily::kGreedyGrid: return "greedy";
    case RoutingFamily::kUpDown: return "updown";
  }
  return "unknown";
}

const char* to_string(ChannelScheme scheme) {
  return scheme == ChannelScheme::kExtended ? "extended" : "basic";
}

// ---------------------------------------------------------------------------
// Core all-pairs sweep
// ---------------------------------------------------------------------------

namespace {

/// Thread-local accumulator for a contiguous source range.
struct Shard {
  ChannelDependencyGraph cdg;
  std::uint32_t max_hops = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t fallbacks = 0;
  std::vector<RouteWitness> loops, endpoints, bounds;
  std::vector<std::uint32_t> stamp;  // node -> last generation seen
  std::uint32_t gen = 0;
};

void keep_witness(std::vector<RouteWitness>& list, std::size_t cap, NodeId s, NodeId t,
                  const std::vector<NodeId>& path, std::string reason) {
  if (list.size() >= cap) return;
  list.push_back({s, t, path, std::move(reason)});
}

void merge_witnesses(std::vector<RouteWitness>& into, std::vector<RouteWitness>& from,
                     std::size_t cap) {
  for (auto& w : from) {
    if (into.size() >= cap) break;
    into.push_back(std::move(w));
  }
}

double gini_index(std::vector<std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  std::sort(loads.begin(), loads.end());
  long double weighted = 0.0L, total = 0.0L;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    weighted += static_cast<long double>(i + 1) * loads[i];
    total += loads[i];
  }
  if (total == 0.0L) return 0.0;
  const long double m = static_cast<long double>(loads.size());
  return static_cast<double>(2.0L * weighted / (m * total) - (m + 1.0L) / m);
}

}  // namespace

RouteAnalysis analyze_route_function(
    NodeId n, const std::function<Route(NodeId, NodeId)>& route_fn,
    const std::function<std::vector<Channel>(const Route&)>& channel_map,
    std::uint32_t hop_bound, std::string hop_bound_law,
    const RouteAnalysisOptions& options) {
  DSN_REQUIRE(n >= 2, "route analysis needs at least two nodes");

  ThreadPool& pool = ThreadPool::global();
  const std::size_t num_shards =
      std::max<std::size_t>(1, std::min<std::size_t>(n, 4 * pool.size()));
  std::vector<Shard> shards(num_shards);

  DSN_OBS_SPAN("analysis.route_sweep");
  pool.parallel_for(0, num_shards, [&](std::size_t k) {
    DSN_OBS_TIMER(AnalysisMetrics::get().shard_ns,
                  AnalysisMetrics::get().shards_run);
    Shard& sh = shards[k];
    sh.stamp.assign(n, 0);
    std::vector<NodeId> path;
    path.reserve(64);
    const NodeId begin = static_cast<NodeId>(k * n / num_shards);
    const NodeId end = static_cast<NodeId>((k + 1) * n / num_shards);
    DSN_OBS_ADD(AnalysisMetrics::get().routes,
                static_cast<std::uint64_t>(end - begin) * (n - 1));
    for (NodeId s = begin; s < end; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        const Route r = route_fn(s, t);
        const auto len = static_cast<std::uint32_t>(r.length());
        sh.total_hops += len;
        sh.max_hops = std::max(sh.max_hops, len);
        if (r.used_fallback) ++sh.fallbacks;

        // Reachability: non-empty hop chain s -> ... -> t without gaps.
        path.clear();
        path.push_back(s);
        NodeId at = s;
        bool chained = !r.hops.empty() && r.hops.front().from == s;
        if (chained) {
          for (const RouteHop& h : r.hops) {
            if (h.from != at) {
              chained = false;
              break;
            }
            at = h.to;
            path.push_back(at);
          }
        }
        if (!chained || at != t) {
          keep_witness(sh.endpoints, options.max_witnesses, s, t, path,
                       !chained ? "route hop chain is broken or empty"
                                : "route terminates at node " + std::to_string(at) +
                                      " instead of the destination");
        } else {
          // Loop freedom: no node appears twice in the walked sequence.
          ++sh.gen;
          for (const NodeId v : path) {
            if (sh.stamp[v] == sh.gen) {
              keep_witness(sh.loops, options.max_witnesses, s, t, path,
                           "route revisits node " + std::to_string(v));
              break;
            }
            sh.stamp[v] = sh.gen;
          }
        }
        if (options.check_hop_bound && hop_bound != 0 && len > hop_bound) {
          keep_witness(sh.bounds, options.max_witnesses, s, t, path,
                       std::to_string(len) + " hops exceed the analytic bound of " +
                           std::to_string(hop_bound));
        }
        sh.cdg.add_route(channel_map(r));
      }
    }
  });

  // Deterministic merge in shard order.
  RouteAnalysis ra;
  ra.n = n;
  ra.pairs = static_cast<std::uint64_t>(n) * (n - 1);
  ra.hop_bound = options.check_hop_bound ? hop_bound : 0;
  ra.hop_bound_law = std::move(hop_bound_law);
  ChannelDependencyGraph cdg = std::move(shards[0].cdg);
  std::uint64_t total_hops = 0;
  for (std::size_t k = 0; k < num_shards; ++k) {
    Shard& sh = shards[k];
    if (k > 0) cdg.merge(sh.cdg);
    ra.max_hops = std::max(ra.max_hops, sh.max_hops);
    total_hops += sh.total_hops;
    ra.fallback_routes += sh.fallbacks;
    merge_witnesses(ra.loop_witnesses, sh.loops, options.max_witnesses);
    merge_witnesses(ra.endpoint_witnesses, sh.endpoints, options.max_witnesses);
    merge_witnesses(ra.bound_witnesses, sh.bounds, options.max_witnesses);
  }
  ra.avg_hops = static_cast<double>(total_hops) / static_cast<double>(ra.pairs);
  ra.loop_free = ra.loop_witnesses.empty();
  ra.all_reachable = ra.endpoint_witnesses.empty();
  ra.within_hop_bound = ra.bound_witnesses.empty();

  // Static channel load.
  const std::vector<std::uint64_t>& loads = cdg.use_counts();
  ra.load.channels = loads.size();
  for (std::size_t i = 0; i < loads.size(); ++i) {
    ra.load.total += loads[i];
    if (loads[i] > ra.load.max_load) {
      ra.load.max_load = loads[i];
      ra.load.max_channel = cdg.channels()[i];
    }
  }
  if (!loads.empty()) {
    ra.load.mean_load =
        static_cast<double>(ra.load.total) / static_cast<double>(loads.size());
    ra.load.gini = gini_index(loads);
  }
  if (ra.load.max_load > 0) {
    ra.load.max_normalized =
        static_cast<double>(ra.load.max_load) / static_cast<double>(n - 1);
    ra.load.throughput_bound = 1.0 / ra.load.max_normalized;
  }

  // Full-CDG acyclicity with a minimal cycle witness.
  ra.cdg_channels = cdg.num_channels();
  ra.cdg_dependencies = cdg.num_dependencies();
  ra.cdg_acyclic = cdg.is_acyclic();
  if (!ra.cdg_acyclic) {
    ra.cdg_cycle = options.find_min_cycle
                       ? cdg.find_shortest_cycle(options.min_cycle_work_cap)
                       : cdg.find_cycle();
  }
  return ra;
}

// ---------------------------------------------------------------------------
// Family-specific entry points
// ---------------------------------------------------------------------------

namespace {

/// The paper's analytic per-pair bound for the DSN custom routing: Fact 2 /
/// Theorem 2 give a routing diameter of 3p + r when x > p - log p. Outside
/// the premise no bound is claimed (returns 0).
std::pair<std::uint32_t, std::string> dsn_hop_bound(const Dsn& d) {
  if (d.x() > d.p() - ilog2_ceil(d.p())) {
    return {3 * d.p() + d.r(),
            "Fact 2 / Theorem 2 (x > p - log p): 3p + r = " +
                std::to_string(3 * d.p() + d.r())};
  }
  return {0, "no analytic bound: premise x > p - log p not met"};
}

Route path_to_route(NodeId s, NodeId t, const std::vector<NodeId>& path) {
  Route r;
  r.src = s;
  r.dst = t;
  r.hops.reserve(path.empty() ? 0 : path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    r.hops.push_back({path[i], path[i + 1], RoutePhase::kMain, HopKind::kSucc});
  }
  return r;
}

std::vector<Channel> single_class_channels(const Route& r) {
  return dsn_route_channels_basic(r);
}

/// All maximal digit runs in `name`, in order ("dsn-5-100" -> {5, 100}).
std::vector<std::uint64_t> name_numbers(const std::string& name) {
  std::vector<std::uint64_t> out;
  std::uint64_t cur = 0;
  bool in_number = false;
  for (const char c : name) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      cur = cur * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      out.push_back(cur);
      cur = 0;
      in_number = false;
    }
  }
  if (in_number) out.push_back(cur);
  return out;
}

}  // namespace

RouteAnalysis analyze_dsn_routes(const Dsn& dsn, ChannelScheme scheme,
                                 const RouteAnalysisOptions& options) {
  const DsnRouter router(dsn);
  auto [bound, law] = dsn_hop_bound(dsn);
  const bool extended = scheme == ChannelScheme::kExtended;
  RouteAnalysis ra = analyze_route_function(
      dsn.n(), [&](NodeId s, NodeId t) { return router.route(s, t); },
      [&](const Route& r) {
        return extended ? dsn_route_channels_extended(dsn, r)
                        : dsn_route_channels_basic(r);
      },
      bound, std::move(law), options);
  ra.topology = dsn.topology().name;
  ra.family = RoutingFamily::kDsn;
  ra.scheme = scheme;
  return ra;
}

RouteAnalysis analyze_dsn_d_routes(const DsnD& dd, const RouteAnalysisOptions& options) {
  auto [bound, law] = dsn_hop_bound(dd.base());
  RouteAnalysis ra = analyze_route_function(
      dd.base().n(), [&](NodeId s, NodeId t) { return route_dsn_d(dd, s, t); },
      [&](const Route& r) { return dsn_route_channels_extended(dd.base(), r); },
      bound, std::move(law), options);
  ra.topology = dd.topology().name;
  ra.family = RoutingFamily::kDsnD;
  ra.scheme = ChannelScheme::kExtended;
  return ra;
}

RoutingFamily default_family(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDsn:
    case TopologyKind::kDsnE:
    case TopologyKind::kDsnBidir:
      return RoutingFamily::kDsn;
    case TopologyKind::kDsnD:
      return RoutingFamily::kDsnD;
    case TopologyKind::kTorus2D:
    case TopologyKind::kTorus3D:
      return RoutingFamily::kTorusDor;
    case TopologyKind::kKleinberg:
      return RoutingFamily::kGreedyGrid;
    default:
      return RoutingFamily::kUpDown;
  }
}

BoundRouting make_route_function(const Topology& topo, RoutingFamily family) {
  const std::uint32_t n = topo.num_nodes();
  DSN_REQUIRE(n >= 2, "route binding needs at least two nodes");
  const std::vector<std::uint64_t> nums = name_numbers(topo.name);

  BoundRouting b;
  switch (family) {
    case RoutingFamily::kDsn: {
      const std::uint32_t p = ilog2_ceil(n);
      std::uint32_t x = 0;
      if (topo.kind == TopologyKind::kDsn) {
        DSN_REQUIRE(nums.size() == 2 && nums[1] == n,
                    "DSN name does not encode (x, n): " + topo.name);
        x = static_cast<std::uint32_t>(nums[0]);
      } else if (topo.kind == TopologyKind::kDsnE) {
        x = p - 1;
        b.scheme = ChannelScheme::kExtended;
      } else if (topo.kind == TopologyKind::kDsnBidir) {
        x = p - 1;
      } else {
        throw PreconditionError("family 'dsn' does not apply to a " +
                                std::string(to_string(topo.kind)) + " topology");
      }
      struct State {
        Dsn base;
        DsnRouter router;
        explicit State(std::uint32_t n, std::uint32_t x) : base(n, x), router(base) {}
      };
      auto state = std::make_shared<const State>(n, x);
      auto [bound, law] = dsn_hop_bound(state->base);
      b.hop_bound = bound;
      b.hop_bound_law = std::move(law);
      b.route = [state](NodeId s, NodeId t) { return state->router.route(s, t); };
      b.channel_map = b.scheme == ChannelScheme::kExtended
                          ? std::function<std::vector<Channel>(const Route&)>(
                                [state](const Route& r) {
                                  return dsn_route_channels_extended(state->base, r);
                                })
                          : &single_class_channels;
      b.state = std::move(state);
      return b;
    }
    case RoutingFamily::kDsnD: {
      DSN_REQUIRE(topo.kind == TopologyKind::kDsnD,
                  "family 'dsn-d' needs a DSN-D topology");
      DSN_REQUIRE(nums.size() == 2 && nums[1] == n,
                  "DSN-D name does not encode (x, n): " + topo.name);
      auto state = std::make_shared<const DsnD>(n, static_cast<std::uint32_t>(nums[0]));
      auto [bound, law] = dsn_hop_bound(state->base());
      b.hop_bound = bound;
      b.hop_bound_law = std::move(law);
      b.scheme = ChannelScheme::kExtended;
      b.route = [state](NodeId s, NodeId t) { return route_dsn_d(*state, s, t); };
      b.channel_map = [state](const Route& r) {
        return dsn_route_channels_extended(state->base(), r);
      };
      b.state = std::move(state);
      return b;
    }
    case RoutingFamily::kTorusDor: {
      DSN_REQUIRE(topo.kind == TopologyKind::kTorus2D ||
                      topo.kind == TopologyKind::kTorus3D,
                  "family 'dor' needs a torus topology");
      std::uint32_t bound = 0;
      for (const std::uint32_t d : topo.dims) bound += d / 2;
      b.hop_bound = bound;
      b.hop_bound_law = "DOR diameter: sum of per-dimension wrap distances = " +
                        std::to_string(bound);
      b.route = [&topo](NodeId s, NodeId t) {
        return path_to_route(s, t, route_torus_dor(topo, s, t));
      };
      b.channel_map = &single_class_channels;
      return b;
    }
    case RoutingFamily::kGreedyGrid: {
      DSN_REQUIRE(topo.dims.size() == 2 && topo.dims[0] == topo.dims[1] &&
                      static_cast<std::uint64_t>(topo.dims[0]) * topo.dims[1] == n,
                  "family 'greedy' needs a square grid topology");
      // One CSR snapshot shared by all walks.
      auto state = std::make_shared<const CsrView>(topo.graph);
      const std::uint32_t side = topo.dims[0];
      b.hop_bound_law = "no analytic per-pair bound (greedy is O(log^2 n) in expectation)";
      b.route = [state, side](NodeId s, NodeId t) {
        return path_to_route(s, t, route_greedy_grid(*state, side, s, t));
      };
      b.channel_map = &single_class_channels;
      b.state = std::move(state);
      return b;
    }
    case RoutingFamily::kUpDown: {
      DSN_REQUIRE(is_connected(topo.graph),
                  "up*/down* analysis needs a connected topology");
      auto state = std::make_shared<const UpDownRouting>(topo.graph, 0);
      b.hop_bound_law = "no analytic per-pair bound for up*/down*";
      b.route = [state](NodeId s, NodeId t) {
        return path_to_route(s, t, state->route(s, t));
      };
      b.channel_map = &single_class_channels;
      b.state = std::move(state);
      return b;
    }
  }
  throw PreconditionError("unknown routing family");
}

RouteAnalysis analyze_topology_routes(const Topology& topo, RoutingFamily family,
                                      const RouteAnalysisOptions& options) {
  const BoundRouting b = make_route_function(topo, family);
  RouteAnalysis ra = analyze_route_function(topo.num_nodes(), b.route, b.channel_map,
                                            b.hop_bound, b.hop_bound_law, options);
  ra.topology = topo.name;
  ra.family = family;
  ra.scheme = b.scheme;
  return ra;
}

// ---------------------------------------------------------------------------
// Witness rendering
// ---------------------------------------------------------------------------

std::string channel_class_name(ChannelScheme scheme, std::uint8_t cls) {
  if (scheme == ChannelScheme::kExtended) {
    switch (cls) {
      case kClassUp: return "up";
      case kClassMain: return "main";
      case kClassFinish: return "finish";
      case kClassExtra: return "extra";
      default: break;
    }
  }
  std::string name = "c";
  name += std::to_string(cls);
  return name;
}

std::string render_channel(const Topology& topo, const Channel& c, ChannelScheme scheme) {
  std::ostringstream os;
  os << c.from << "->" << c.to << " [" << channel_class_name(scheme, c.cls) << "]";
  if (c.from >= topo.num_nodes() || c.to >= topo.num_nodes()) return os.str();

  // Pick the physical link carrying this channel: among parallel (from, to)
  // links prefer the one whose role matches the channel class (Up channels
  // ride Up links, Extra channels ride Extra links, everything else rides the
  // ring/shortcut fabric).
  const LinkRole preferred = c.cls == kClassUp    ? LinkRole::kUp
                             : c.cls == kClassExtra ? LinkRole::kExtra
                                                    : LinkRole::kRing;
  LinkId chosen = kInvalidLink;
  for (const AdjHalf& h : topo.graph.neighbors(c.from)) {
    if (h.to != c.to) continue;
    if (chosen == kInvalidLink) chosen = h.link;
    if (scheme == ChannelScheme::kExtended && h.link < topo.link_roles.size() &&
        topo.link_roles[h.link] == preferred) {
      chosen = h.link;
      break;
    }
  }
  if (chosen != kInvalidLink) {
    os << " via ";
    if (chosen < topo.link_roles.size()) os << to_string(topo.link_roles[chosen]) << " ";
    os << "link#" << chosen;
  } else {
    os << " (no physical link)";
  }
  return os.str();
}

std::string render_cycle_witness(const Topology& topo, const std::vector<Channel>& cycle,
                                 ChannelScheme scheme) {
  std::ostringstream os;
  os << "channel-cycle witness (" << cycle.size() << " channels, each waits on the next):\n";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    os << "  (" << i << ") " << render_channel(topo, cycle[i], scheme) << "\n";
  }
  os << "  -> (0) closes the cycle";
  return os.str();
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

namespace {

Json channel_json(const Channel& c, ChannelScheme scheme) {
  Json j = Json::object();
  j.set("from", static_cast<std::uint64_t>(c.from));
  j.set("to", static_cast<std::uint64_t>(c.to));
  j.set("cls", static_cast<std::uint64_t>(c.cls));
  j.set("class", channel_class_name(scheme, c.cls));
  return j;
}

Json witness_json(const RouteWitness& w) {
  Json j = Json::object();
  j.set("src", static_cast<std::uint64_t>(w.src));
  j.set("dst", static_cast<std::uint64_t>(w.dst));
  j.set("reason", w.reason);
  Json path = Json::array();
  for (const NodeId v : w.path) path.push_back(static_cast<std::uint64_t>(v));
  j.set("path", std::move(path));
  return j;
}

}  // namespace

Json to_json(const RouteAnalysis& a) {
  Json j = Json::object();
  j.set("topology", a.topology);
  j.set("family", to_string(a.family));
  j.set("scheme", to_string(a.scheme));
  j.set("n", static_cast<std::uint64_t>(a.n));
  j.set("pairs", a.pairs);

  Json props = Json::object();
  props.set("loop_free", a.loop_free);
  props.set("all_reachable", a.all_reachable);
  props.set("within_hop_bound", a.within_hop_bound);
  props.set("no_fallback", a.fallback_routes == 0);
  props.set("cdg_acyclic", a.cdg_acyclic);
  j.set("properties", std::move(props));

  j.set("hop_bound", a.hop_bound == 0 ? Json() : Json(static_cast<std::uint64_t>(a.hop_bound)));
  j.set("hop_bound_law", a.hop_bound_law);
  j.set("max_hops", static_cast<std::uint64_t>(a.max_hops));
  j.set("avg_hops", a.avg_hops);
  j.set("fallback_routes", a.fallback_routes);

  Json witnesses = Json::object();
  Json loops = Json::array(), endpoints = Json::array(), bounds = Json::array();
  for (const auto& w : a.loop_witnesses) loops.push_back(witness_json(w));
  for (const auto& w : a.endpoint_witnesses) endpoints.push_back(witness_json(w));
  for (const auto& w : a.bound_witnesses) bounds.push_back(witness_json(w));
  witnesses.set("loops", std::move(loops));
  witnesses.set("endpoints", std::move(endpoints));
  witnesses.set("hop_bound", std::move(bounds));
  j.set("witnesses", std::move(witnesses));

  Json load = Json::object();
  load.set("channels", static_cast<std::uint64_t>(a.load.channels));
  load.set("total", a.load.total);
  load.set("max", a.load.max_load);
  load.set("mean", a.load.mean_load);
  load.set("gini", a.load.gini);
  load.set("max_channel", channel_json(a.load.max_channel, a.scheme));
  load.set("max_normalized", a.load.max_normalized);
  load.set("throughput_bound", a.load.throughput_bound);
  j.set("load", std::move(load));

  Json cdg = Json::object();
  cdg.set("channels", static_cast<std::uint64_t>(a.cdg_channels));
  cdg.set("dependencies", static_cast<std::uint64_t>(a.cdg_dependencies));
  cdg.set("acyclic", a.cdg_acyclic);
  Json cycle = Json::array();
  for (const Channel& c : a.cdg_cycle) cycle.push_back(channel_json(c, a.scheme));
  cdg.set("cycle", std::move(cycle));
  j.set("cdg", std::move(cdg));
  return j;
}

std::string summary(const RouteAnalysis& a) {
  std::ostringstream os;
  const auto verdict = [](bool proven) { return proven ? "PROVEN" : "REFUTED"; };
  os << "route-analysis " << a.topology << " [family=" << to_string(a.family)
     << " scheme=" << to_string(a.scheme) << " n=" << a.n << " pairs=" << a.pairs
     << "]\n";
  os << "  loop freedom      " << verdict(a.loop_free) << "\n";
  os << "  reachability      " << verdict(a.all_reachable) << "\n";
  if (a.hop_bound != 0) {
    os << "  hop bound         " << verdict(a.within_hop_bound) << " (max "
       << a.max_hops << " vs " << a.hop_bound << "; " << a.hop_bound_law << ")\n";
  } else {
    os << "  hop bound         SKIPPED (" << a.hop_bound_law << "; max " << a.max_hops
       << ")\n";
  }
  os << "  fallback routes   " << a.fallback_routes << "\n";
  os << "  hops              max " << a.max_hops << ", avg " << a.avg_hops << "\n";
  os << "  channel load      max " << a.load.max_load << ", mean " << a.load.mean_load
     << ", gini " << a.load.gini << " over " << a.load.channels << " channels\n";
  os << "  throughput bound  " << a.load.throughput_bound
     << " (uniform injection rate saturating the hottest channel)\n";
  os << "  CDG               " << a.cdg_channels << " channels, " << a.cdg_dependencies
     << " dependencies: " << (a.cdg_acyclic ? "ACYCLIC (deadlock-free)" : "CYCLIC");
  for (const auto* group : {&a.loop_witnesses, &a.endpoint_witnesses, &a.bound_witnesses}) {
    for (const RouteWitness& w : *group) {
      os << "\n  witness (" << w.src << " -> " << w.dst << "): " << w.reason;
    }
  }
  return os.str();
}

}  // namespace dsn::analyze
