#include "dsn/analysis/wire_latency.hpp"

#include <algorithm>
#include "dsn/common/mutex.hpp"

#include "dsn/common/thread_pool.hpp"
#include "dsn/graph/metrics.hpp"

namespace dsn {

WireLatencyStats estimate_wire_latency(const Topology& topo,
                                       const WireLatencyConfig& config) {
  const NodeId n = topo.num_nodes();
  DSN_REQUIRE(n >= 2, "need at least two switches");
  const bool grid = topo.dims.size() == 2;
  const FloorLayout layout(topo, config.room,
                           grid ? PlacementStrategy::kGrid2D
                                : PlacementStrategy::kLinear);

  // Pre-compute per-link cable lengths once.
  std::vector<double> link_m(topo.graph.num_links());
  for (LinkId l = 0; l < topo.graph.num_links(); ++l) {
    const auto [u, v] = topo.graph.link_endpoints(l);
    link_m[l] = layout.cable_length_m(u, v);
  }

  Mutex merge;
  double hops_sum = 0.0, cable_sum = 0.0, lat_sum = 0.0, lat_max = 0.0;

  parallel_for(0, n, [&](std::size_t src) {
    // BFS recording, per node, the incoming link of one shortest path
    // (deterministic: adjacency order, first visit wins).
    const NodeId s = static_cast<NodeId>(src);
    std::vector<std::uint32_t> dist(n, kUnreachable);
    std::vector<LinkId> via(n, kInvalidLink);
    std::vector<NodeId> parent(n, kInvalidNode);
    std::vector<NodeId> frontier{s}, next;
    dist[s] = 0;
    while (!frontier.empty()) {
      next.clear();
      for (const NodeId u : frontier) {
        for (const AdjHalf& h : topo.graph.neighbors(u)) {
          if (dist[h.to] != kUnreachable) continue;
          dist[h.to] = dist[u] + 1;
          via[h.to] = h.link;
          parent[h.to] = u;
          next.push_back(h.to);
        }
      }
      frontier.swap(next);
    }

    // Accumulate cable length along each node's shortest-path tree branch
    // with a second pass in BFS order (parents are always finalized first).
    std::vector<double> cable_to(n, 0.0);
    // Re-walk nodes in increasing distance: bucket by distance.
    std::vector<std::vector<NodeId>> by_dist;
    for (NodeId v = 0; v < n; ++v) {
      if (v == s || dist[v] == kUnreachable) continue;
      if (dist[v] >= by_dist.size()) by_dist.resize(dist[v] + 1);
      by_dist[dist[v]].push_back(v);
    }
    double local_hops = 0.0, local_cable = 0.0, local_lat = 0.0, local_max = 0.0;
    for (const auto& bucket : by_dist) {
      for (const NodeId v : bucket) {
        cable_to[v] = cable_to[parent[v]] + link_m[via[v]];
        const double lat =
            (dist[v] + 1) * config.router_ns + cable_to[v] * config.cable_ns_per_m;
        local_hops += dist[v];
        local_cable += cable_to[v];
        local_lat += lat;
        local_max = std::max(local_max, lat);
      }
    }
    LockGuard lock(merge);
    hops_sum += local_hops;
    cable_sum += local_cable;
    lat_sum += local_lat;
    lat_max = std::max(lat_max, local_max);
  });

  const double pairs = static_cast<double>(n) * (n - 1);
  WireLatencyStats stats;
  stats.avg_hops = hops_sum / pairs;
  stats.avg_cable_m = cable_sum / pairs;
  stats.avg_latency_ns = lat_sum / pairs;
  stats.max_latency_ns = lat_max;
  const double wire_ns = stats.avg_cable_m * config.cable_ns_per_m;
  stats.wire_fraction = wire_ns / stats.avg_latency_ns;
  return stats;
}

}  // namespace dsn
